//! Static English-Hebrew labeling (Nudler–Rudolph style baseline).
//!
//! The original English-Hebrew scheme labels every thread with two static
//! integer vectors whose lengths grow with the number of forks in the program
//! — that growth is the scheme's downfall (Figure 3: Θ(f) space per node and
//! Θ(f) query time) and the motivation for replacing static labels with
//! order-maintenance structures in SP-order.
//!
//! Our baseline realizes the same idea as a *pedigree* labeling: a thread's
//! label is its root-to-leaf path, one entry per internal node, recording the
//! branch direction taken and whether the node is a P-node.  The English
//! comparison orders threads by the raw path (left before right everywhere);
//! the Hebrew comparison flips the direction bit at P-nodes (right before
//! left).  A thread precedes another iff it precedes it in both comparisons —
//! the same characterization (Lemma 1) SP-order uses, but with Θ(depth)-sized
//! labels, Θ(depth) label-materialization cost per thread, and Θ(depth) query
//! time, where the depth is Θ(f) in the worst case.

use sptree::tree::{NodeId, NodeKind, ParseTree, ThreadId};
use sptree::walk::TreeVisitor;

use crate::api::{CurrentSpQuery, OnTheFlySp, SpQuery};

/// One step of a root-to-leaf path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct PathStep {
    /// True if the internal node is a P-node.
    is_p: bool,
    /// True if the path continues into the right child.
    right: bool,
}

/// Static English-Hebrew (pedigree) labels for every thread.
pub struct EnglishHebrewLabels {
    /// Current root-to-node path maintained during the walk.
    path: Vec<PathStep>,
    /// Label of each thread (its root-to-leaf path), filled in when the
    /// thread executes.
    labels: Vec<Option<Box<[PathStep]>>>,
    /// Total label entries stored (space metric).
    total_label_len: usize,
    current: Option<ThreadId>,
}

impl EnglishHebrewLabels {
    /// Length of a thread's label (test / bench metric).
    pub fn label_len(&self, thread: ThreadId) -> usize {
        self.labels[thread.index()]
            .as_ref()
            .map(|l| l.len())
            .unwrap_or(0)
    }

    /// Sum of all label lengths (the Θ(f)-per-node space behaviour).
    pub fn total_label_len(&self) -> usize {
        self.total_label_len
    }

    /// Compare two labels in the English order: first differing step decides,
    /// left (false) before right (true).
    fn english_less(a: &[PathStep], b: &[PathStep]) -> bool {
        for (sa, sb) in a.iter().zip(b.iter()) {
            if sa.right != sb.right {
                return !sa.right;
            }
        }
        // Two distinct leaves can never have one path a prefix of the other.
        debug_assert_eq!(a.len(), b.len(), "leaf paths cannot be nested");
        false
    }

    /// Compare two labels in the Hebrew order: like English, but the branch
    /// direction is flipped at P-nodes.
    fn hebrew_less(a: &[PathStep], b: &[PathStep]) -> bool {
        for (sa, sb) in a.iter().zip(b.iter()) {
            if sa.right != sb.right {
                let a_first = if sa.is_p { sa.right } else { !sa.right };
                return a_first;
            }
        }
        debug_assert_eq!(a.len(), b.len(), "leaf paths cannot be nested");
        false
    }
}

impl TreeVisitor for EnglishHebrewLabels {
    fn enter_internal(&mut self, tree: &ParseTree, node: NodeId) {
        self.path.push(PathStep {
            is_p: tree.kind(node) == NodeKind::P,
            right: false,
        });
    }

    fn between_children(&mut self, _tree: &ParseTree, _node: NodeId) {
        // The left subtree is finished; the walk continues into the right
        // child, so the step for this node (now at the top of the path) flips.
        self.path
            .last_mut()
            .expect("between_children with empty path")
            .right = true;
    }

    fn leave_internal(&mut self, _tree: &ParseTree, _node: NodeId) {
        self.path.pop();
    }

    fn visit_thread(&mut self, _tree: &ParseTree, _node: NodeId, thread: ThreadId) {
        let label: Box<[PathStep]> = self.path.clone().into_boxed_slice();
        self.total_label_len += label.len();
        self.labels[thread.index()] = Some(label);
        self.current = Some(thread);
    }
}

impl SpQuery for EnglishHebrewLabels {
    fn precedes(&self, a: ThreadId, b: ThreadId) -> bool {
        if a == b {
            return false;
        }
        let la = self.labels[a.index()].as_ref().expect("thread a not yet executed");
        let lb = self.labels[b.index()].as_ref().expect("thread b not yet executed");
        Self::english_less(la, lb) && Self::hebrew_less(la, lb)
    }
}

impl CurrentSpQuery for EnglishHebrewLabels {
    fn precedes_current(&self, earlier: ThreadId) -> bool {
        let current = self.current.expect("no thread is currently executing");
        self.precedes(earlier, current)
    }
}

impl OnTheFlySp for EnglishHebrewLabels {
    fn for_tree(tree: &ParseTree) -> Self {
        EnglishHebrewLabels {
            path: Vec::with_capacity(64),
            labels: vec![None; tree.num_threads()],
            total_label_len: 0,
            current: None,
        }
    }

    fn name(&self) -> &'static str {
        "english-hebrew"
    }

    fn space_bytes(&self) -> usize {
        self.labels.capacity() * std::mem::size_of::<Option<Box<[PathStep]>>>()
            + self.total_label_len * std::mem::size_of::<PathStep>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{run_serial, run_serial_with_queries};
    use sptree::builder::Ast;
    use sptree::generate::{left_deep_parallel, random_sp_ast, serial_chain};
    use sptree::oracle::SpOracle;

    fn assert_matches_oracle(tree: &ParseTree) {
        let oracle = SpOracle::new(tree);
        let alg: EnglishHebrewLabels = run_serial(tree);
        for a in tree.thread_ids() {
            for b in tree.thread_ids() {
                assert_eq!(
                    alg.relation(a, b),
                    oracle.relation(a, b),
                    "threads {a:?}, {b:?}"
                );
            }
        }
    }

    #[test]
    fn basic_compositions() {
        assert_matches_oracle(&Ast::seq(vec![Ast::leaf(1), Ast::leaf(1)]).build());
        assert_matches_oracle(&Ast::par(vec![Ast::leaf(1), Ast::leaf(1)]).build());
        assert_matches_oracle(&serial_chain(30, 1).build());
    }

    #[test]
    fn random_trees_match_oracle() {
        for seed in 0..10u64 {
            assert_matches_oracle(&random_sp_ast(60, 0.5, seed).build());
        }
    }

    #[test]
    fn label_length_grows_with_nesting_depth() {
        // This is precisely the weakness Figure 3 reports: Θ(f)/Θ(d) labels.
        let shallow: EnglishHebrewLabels = run_serial(&left_deep_parallel(4, 1).build());
        let deep: EnglishHebrewLabels = run_serial(&left_deep_parallel(64, 1).build());
        let shallow_max = (0..5u32).map(|t| shallow.label_len(ThreadId(t))).max();
        let deep_max = (0..65u32).map(|t| deep.label_len(ThreadId(t))).max();
        assert!(deep_max.unwrap() > 8 * shallow_max.unwrap());
    }

    #[test]
    fn on_the_fly_queries_match_oracle() {
        let tree = random_sp_ast(50, 0.6, 11).build();
        let oracle = SpOracle::new(&tree);
        let _alg = run_serial_with_queries::<EnglishHebrewLabels, _>(&tree, |alg, current| {
            for earlier in 0..current.index() as u32 {
                let earlier = ThreadId(earlier);
                assert_eq!(
                    alg.precedes_current(earlier),
                    oracle.precedes(earlier, current)
                );
            }
        });
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        #[test]
        fn prop_matches_oracle(leaves in 2usize..80, p in 0.0f64..1.0, seed in 0u64..1_000_000) {
            let tree = random_sp_ast(leaves, p, seed).build();
            let oracle = SpOracle::new(&tree);
            let alg: EnglishHebrewLabels = run_serial(&tree);
            for a in tree.thread_ids() {
                for b in tree.thread_ids() {
                    proptest::prop_assert_eq!(alg.relation(a, b), oracle.relation(a, b));
                }
            }
        }
    }
}

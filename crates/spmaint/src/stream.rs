//! Streaming SP maintenance: the event layer for computations that *unfold*
//! instead of arriving as a pre-built parse tree.
//!
//! Every serial algorithm in this crate consumes a materialized
//! [`sptree::tree::ParseTree`] through [`sptree::walk::TreeVisitor`].  A live
//! execution (the `spprog` crate, over `forkrt`'s live mode) has no tree to
//! hand out — only a stream of *reveal* events: "this position turned out to
//! be an S/P node", "this position is a leaf and its thread executes now".
//! [`StreamingSpBackend`] is that event interface, and
//! [`StreamingSpOrder`] implements the paper's SP-order algorithm (§2,
//! Figure 5) against it: the two order-maintenance lists are maintained
//! exactly as in the tree-driven [`crate::SpOrder`], but node handles are
//! allocated on the fly as the structure is revealed, one [`StreamNode`] per
//! unfolded position.
//!
//! The adapter [`stream_tree`] replays a materialized tree through the
//! streaming interface — the bridge used by the equivalence tests: streaming
//! a tree must answer every query exactly like the tree-driven algorithm.
//!
//! See the repository-root `ARCHITECTURE.md#live-execution-spprog` for how
//! this layer slots into the live-execution subsystem.

use om::{OmNode, OrderMaintenance, TwoLevelList};
use sptree::tree::{NodeKind, ParseTree, ThreadId};
use sptree::walk::{serial_walk, WalkEvent};

use crate::api::{CurrentSpQuery, SpQuery};

/// Handle of a node in an incrementally unfolding SP parse tree.
///
/// The root is handed out by [`StreamingSpBackend::stream_root`]; children
/// are allocated by [`StreamingSpBackend::expand`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StreamNode(pub u32);

impl StreamNode {
    /// Raw index of this handle.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Encode as a scheduler tag (the 64-bit value `forkrt::live` threads
    /// down the walk).
    #[inline]
    pub fn to_tag(self) -> u64 {
        self.0 as u64
    }

    /// Decode from a scheduler tag.
    #[inline]
    pub fn from_tag(tag: u64) -> Self {
        StreamNode(tag as u32)
    }
}

/// An SP maintainer driven by reveal events instead of a tree walk.
///
/// The event contract mirrors a left-to-right serial execution: `expand` is
/// called when a position is revealed to be internal (before anything inside
/// it executes; the parent must have been expanded first), and `execute`
/// when a position is revealed to be a leaf whose thread starts executing —
/// that thread is *current* until the next `execute`.  Between events,
/// [`CurrentSpQuery`] relates any already-executed thread to the current one.
pub trait StreamingSpBackend: CurrentSpQuery {
    /// Create an empty structure and the handle of the root position.
    fn stream_new() -> (Self, StreamNode)
    where
        Self: Sized;

    /// The handle of the root position.
    fn stream_root(&self) -> StreamNode;

    /// `node` is revealed to be an internal node (`parallel` selects P over
    /// S); returns the handles of its (left, right) children.
    fn expand(&mut self, node: StreamNode, parallel: bool) -> (StreamNode, StreamNode);

    /// `node` is revealed to be a leaf executing as `thread`; `thread`
    /// becomes the currently executing thread.  Threads are numbered by the
    /// caller (serial executions number them 0, 1, 2, … in execution order).
    fn execute(&mut self, node: StreamNode, thread: ThreadId);

    /// Human-readable name (for reports and benches).
    fn stream_name(&self) -> &'static str;

    /// Approximate heap bytes used.
    fn stream_space_bytes(&self) -> usize;
}

/// SP-order over an incrementally unfolding tree.
///
/// Same algorithm as the tree-driven [`crate::SpOrder`] — two
/// order-maintenance lists, children inserted after their parent in English
/// order and (for P-nodes) reversed in Hebrew order — but fed by
/// [`StreamingSpBackend`] events, so it never needs (or builds) a
/// [`ParseTree`].  Generic over the order-maintenance structure like its
/// tree-driven sibling.
///
/// ```
/// use spmaint::stream::{StreamingSpBackend, StreamingSpOrder};
/// use spmaint::{CurrentSpQuery, SpQuery};
/// use sptree::tree::ThreadId;
///
/// // Unfold S(u0, P(u1, u2)) event by event, querying as threads execute.
/// let (mut sp, root) = StreamingSpOrder::<om::TwoLevelList>::stream_new();
/// let (u0, rest) = sp.expand(root, false);   // root is an S-node
/// sp.execute(u0, ThreadId(0));               // u0 runs first
/// let (u1, u2) = sp.expand(rest, true);      // the rest is a P-node
/// sp.execute(u1, ThreadId(1));
/// assert!(sp.precedes_current(ThreadId(0))); // serial prefix precedes
/// sp.execute(u2, ThreadId(2));
/// assert!(sp.parallel_with_current(ThreadId(1))); // sibling branch is parallel
/// assert!(sp.precedes(ThreadId(0), ThreadId(2)));
/// ```
pub struct StreamingSpOrder<L: OrderMaintenance = TwoLevelList> {
    eng: L,
    heb: L,
    /// English/Hebrew handle of every stream node, indexed by [`StreamNode`].
    nodes: Vec<(OmNode, OmNode)>,
    /// Handles of every executed thread's leaf, indexed by [`ThreadId`].
    threads: Vec<Option<(OmNode, OmNode)>>,
    current: Option<ThreadId>,
}

impl<L: OrderMaintenance> StreamingSpOrder<L> {
    /// Number of stream nodes revealed so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of threads executed so far.
    pub fn num_executed(&self) -> usize {
        self.threads.iter().filter(|t| t.is_some()).count()
    }

    fn handles_of(&self, thread: ThreadId) -> (OmNode, OmNode) {
        self.threads
            .get(thread.index())
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("thread u{} has not executed yet", thread.0))
    }
}

impl<L: OrderMaintenance> StreamingSpBackend for StreamingSpOrder<L> {
    fn stream_new() -> (Self, StreamNode) {
        let (mut eng, eng_base) = L::new();
        let (mut heb, heb_base) = L::new();
        let root = (eng.insert_after(eng_base), heb.insert_after(heb_base));
        (
            StreamingSpOrder {
                eng,
                heb,
                nodes: vec![root],
                threads: Vec::new(),
                current: None,
            },
            StreamNode(0),
        )
    }

    fn stream_root(&self) -> StreamNode {
        StreamNode(0)
    }

    fn expand(&mut self, node: StreamNode, parallel: bool) -> (StreamNode, StreamNode) {
        let (node_eng, node_heb) = self.nodes[node.index()];
        // English order: insert ⟨left, right⟩ after X (line 4 of Figure 5).
        let eng = self.eng.insert_after_many(node_eng, 2);
        // Hebrew order: ⟨left, right⟩ after an S-node, ⟨right, left⟩ after a
        // P-node (lines 5–7).
        let heb = self.heb.insert_after_many(node_heb, 2);
        let (left_heb, right_heb) = if parallel {
            (heb[1], heb[0])
        } else {
            (heb[0], heb[1])
        };
        let left = StreamNode(self.nodes.len() as u32);
        self.nodes.push((eng[0], left_heb));
        let right = StreamNode(self.nodes.len() as u32);
        self.nodes.push((eng[1], right_heb));
        (left, right)
    }

    fn execute(&mut self, node: StreamNode, thread: ThreadId) {
        let handles = self.nodes[node.index()];
        if self.threads.len() <= thread.index() {
            self.threads.resize(thread.index() + 1, None);
        }
        debug_assert!(
            self.threads[thread.index()].is_none(),
            "thread u{} executed twice",
            thread.0
        );
        self.threads[thread.index()] = Some(handles);
        self.current = Some(thread);
    }

    fn stream_name(&self) -> &'static str {
        "streaming-sp-order"
    }

    fn stream_space_bytes(&self) -> usize {
        self.eng.space_bytes()
            + self.heb.space_bytes()
            + self.nodes.capacity() * std::mem::size_of::<(OmNode, OmNode)>()
            + self.threads.capacity() * std::mem::size_of::<Option<(OmNode, OmNode)>>()
    }
}

/// Arbitrary-pair queries over *executed* threads (valid at any point during
/// the unfolding — a leaf's position in both orders is fixed as soon as it
/// is revealed, exactly like in the tree-driven SP-order).
impl<L: OrderMaintenance> SpQuery for StreamingSpOrder<L> {
    fn precedes(&self, a: ThreadId, b: ThreadId) -> bool {
        if a == b {
            return false;
        }
        let (ea, ha) = self.handles_of(a);
        let (eb, hb) = self.handles_of(b);
        self.eng.precedes(ea, eb) && self.heb.precedes(ha, hb)
    }
}

impl<L: OrderMaintenance> CurrentSpQuery for StreamingSpOrder<L> {
    fn precedes_current(&self, earlier: ThreadId) -> bool {
        let current = self.current.expect("no thread is currently executing");
        self.precedes(earlier, current)
    }
}

/// Replay a materialized parse tree through a streaming backend, invoking
/// `on_thread(&backend, thread)` while each thread is current — the bridge
/// from the tree world to the event world, used by the equivalence tests to
/// pin streaming maintainers against their tree-driven siblings.
pub fn stream_tree<B, F>(tree: &ParseTree, mut on_thread: F) -> B
where
    B: StreamingSpBackend,
    F: FnMut(&B, ThreadId),
{
    let (mut backend, root) = B::stream_new();
    // Map tree nodes to stream handles as the walk reveals them.
    let mut handle = vec![StreamNode(u32::MAX); tree.num_nodes()];
    handle[tree.root().index()] = root;
    serial_walk(tree, |event| match event {
        WalkEvent::EnterInternal(n) => {
            let parallel = tree.kind(n) == NodeKind::P;
            let (l, r) = backend.expand(handle[n.index()], parallel);
            handle[tree.left(n).index()] = l;
            handle[tree.right(n).index()] = r;
        }
        WalkEvent::Thread(n, t) => {
            backend.execute(handle[n.index()], t);
            on_thread(&backend, t);
        }
        WalkEvent::BetweenChildren(_) | WalkEvent::LeaveInternal(_) => {}
    });
    backend
}

#[cfg(test)]
mod tests {
    use super::*;
    use om::TagList;
    use sptree::generate::{random_sp_ast, serial_chain};
    use sptree::oracle::SpOracle;

    #[test]
    fn streamed_tree_matches_oracle_on_all_pairs() {
        for seed in 0..8u64 {
            let tree = random_sp_ast(80, 0.5, seed).build();
            let oracle = SpOracle::new(&tree);
            let sp: StreamingSpOrder = stream_tree(&tree, |_b, _t| {});
            for a in tree.thread_ids() {
                for b in tree.thread_ids() {
                    assert_eq!(
                        sp.relation(a, b),
                        oracle.relation(a, b),
                        "seed {seed}, threads {a:?}, {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn current_thread_queries_match_oracle_during_the_stream() {
        let tree = random_sp_ast(70, 0.6, 42).build();
        let oracle = SpOracle::new(&tree);
        let _sp: StreamingSpOrder = stream_tree(&tree, |sp: &StreamingSpOrder, current| {
            for earlier in 0..current.0 {
                let earlier = ThreadId(earlier);
                assert_eq!(
                    sp.precedes_current(earlier),
                    oracle.precedes(earlier, current),
                    "u{} vs current u{}",
                    earlier.0,
                    current.0
                );
            }
        });
    }

    #[test]
    fn streaming_agrees_with_tree_driven_sp_order() {
        use crate::api::run_serial;
        use crate::SpOrder;
        for seed in [3u64, 9, 27] {
            let tree = random_sp_ast(60, 0.45, seed).build();
            let streamed: StreamingSpOrder = stream_tree(&tree, |_b, _t| {});
            let driven: SpOrder = run_serial(&tree);
            for a in tree.thread_ids() {
                for b in tree.thread_ids() {
                    assert_eq!(streamed.relation(a, b), driven.relation(a, b));
                }
            }
        }
    }

    #[test]
    fn works_over_the_tag_list_substrate_too() {
        let tree = random_sp_ast(50, 0.5, 5).build();
        let oracle = SpOracle::new(&tree);
        let sp: StreamingSpOrder<TagList> = stream_tree(&tree, |_b, _t| {});
        for a in tree.thread_ids() {
            for b in tree.thread_ids() {
                assert_eq!(sp.relation(a, b), oracle.relation(a, b));
            }
        }
        assert_eq!(sp.stream_name(), "streaming-sp-order");
        assert!(sp.stream_space_bytes() > 0);
    }

    #[test]
    fn deep_chain_streams_without_recursion_issues() {
        let tree = serial_chain(5_000, 1).build();
        let sp: StreamingSpOrder = stream_tree(&tree, |_b, _t| {});
        assert_eq!(sp.num_executed(), 5_000);
        assert!(sp.precedes(ThreadId(0), ThreadId(4_999)));
        assert!(!sp.precedes(ThreadId(4_999), ThreadId(0)));
    }

    #[test]
    fn node_and_tag_round_trip() {
        let n = StreamNode(1234);
        assert_eq!(StreamNode::from_tag(n.to_tag()), n);
        assert_eq!(n.index(), 1234);
    }

    #[test]
    #[should_panic(expected = "has not executed yet")]
    fn querying_an_unexecuted_thread_panics() {
        let (mut sp, root) = StreamingSpOrder::<TwoLevelList>::stream_new();
        sp.execute(root, ThreadId(0));
        let _ = sp.precedes(ThreadId(0), ThreadId(7));
    }
}

//! Serial SP-maintenance algorithms.
//!
//! An *SP-maintenance* data structure ingests an SP parse tree as it unfolds
//! during a (serial) execution and answers queries about the series-parallel
//! relationship between threads.  This crate implements every serial
//! algorithm that appears in Figure 3 of the paper:
//!
//! | Algorithm | Space per node | Thread creation | Query |
//! |---|---|---|---|
//! | [`EnglishHebrewLabels`] (Nudler–Rudolph style static labels) | Θ(f) | Θ(f)¹ | Θ(f) |
//! | [`OffsetSpanLabels`] (Mellor-Crummey) | Θ(d) | Θ(d)¹ | Θ(d) |
//! | [`SpBags`] (Feng–Leiserson) | Θ(1) | Θ(α(v,v)) | Θ(α(v,v)) |
//! | [`SpOrder`] (this paper) | Θ(1) | Θ(1) | Θ(1) |
//!
//! where `f` is the number of forks, `d` the maximum nesting depth of
//! parallelism, and α Tarjan's functional inverse of Ackermann's function.
//! ¹ In our label-based baselines the creation cost includes materializing the
//! label (a copy of the ancestor path), so it grows like the label length; the
//! original schemes share label prefixes and advertise Θ(1) creation.  The
//! growth behaviour that the paper's comparison highlights — label length and
//! query time growing with `f` or `d` while SP-order stays constant — is
//! preserved and is what the `fig3_*` benchmarks measure.
//!
//! All algorithms are driven through the [`sptree::walk::TreeVisitor`]
//! interface by a serial left-to-right walk ([`run_serial`],
//! [`run_serial_with_queries`]), mirroring how a serial race detector executes
//! the program under test and issues queries from the currently executing
//! thread.
//!
//! Every algorithm additionally implements the unified [`SpBackend`] trait,
//! the common interface shared with the parallel maintainers in `sphybrid`
//! (SP-hybrid and the naive locked SP-order).  The generic race-detection
//! engine in `racedet` and the differential conformance harness in
//! `spconform` drive all six implementations through that one trait.  The
//! repository-root `ARCHITECTURE.md#serial-sp-maintenance-figure-3` places
//! this crate in the paper-to-crate map.

pub mod api;
pub mod english_hebrew;
pub mod offset_span;
pub mod sp_bags;
pub mod sp_order;
pub mod stream;

pub use api::{
    run_serial, run_serial_backend, run_serial_with_queries, BackendConfig, CurrentSpQuery,
    FullSpBackend, OnTheFlySp, SpBackend, SpQuery,
};
pub use english_hebrew::EnglishHebrewLabels;
pub use offset_span::OffsetSpanLabels;
pub use sp_bags::SpBags;
pub use sp_order::SpOrder;
pub use stream::{stream_tree, StreamNode, StreamingSpBackend, StreamingSpOrder};

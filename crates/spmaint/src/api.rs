//! Common interfaces of the serial SP-maintenance algorithms.
//!
//! Two query flavours exist, matching the paper:
//!
//! * [`SpQuery`] — answer the relation between **any** two already-executed
//!   threads.  SP-order and the two label-based baselines provide this.
//! * [`CurrentSpQuery`] — answer the relation between an already-executed
//!   thread and the **currently executing** thread only.  These are the
//!   weaker semantics of SP-bags (and of SP-hybrid), and they are exactly what
//!   an on-the-fly race detector needs.
//!
//! Algorithms are built "on the fly" by feeding them the left-to-right walk of
//! the parse tree through [`sptree::walk::TreeVisitor`]; [`OnTheFlySp`] adds
//! the constructor and introspection the drivers and benchmarks need.

use sptree::oracle::Relation;
use sptree::tree::{ParseTree, ThreadId};
use sptree::walk::{walk_visitor, TreeVisitor};

/// Relation queries between two arbitrary already-executed threads.
pub trait SpQuery {
    /// Does `a` logically precede `b` (`a ≺ b`)?
    fn precedes(&self, a: ThreadId, b: ThreadId) -> bool;

    /// Do `a` and `b` operate logically in parallel (`a ∥ b`)?
    fn parallel(&self, a: ThreadId, b: ThreadId) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// Full relation between two threads.
    fn relation(&self, a: ThreadId, b: ThreadId) -> Relation {
        if a == b {
            Relation::Same
        } else if self.precedes(a, b) {
            Relation::Precedes
        } else if self.precedes(b, a) {
            Relation::Follows
        } else {
            Relation::Parallel
        }
    }
}

/// Relation queries against the currently executing thread only.
pub trait CurrentSpQuery {
    /// Does `earlier` logically precede the currently executing thread?
    fn precedes_current(&self, earlier: ThreadId) -> bool;

    /// Does `earlier` operate logically in parallel with the currently
    /// executing thread?
    fn parallel_with_current(&self, earlier: ThreadId) -> bool {
        !self.precedes_current(earlier)
    }
}

/// Every algorithm that answers pair queries trivially also answers
/// current-thread queries once told which thread is current; the serial
/// drivers take care of that, so a blanket impl is not provided — instead the
/// per-algorithm impls record the current thread in `visit_thread`.
///
/// An on-the-fly serial SP-maintenance algorithm.
pub trait OnTheFlySp: TreeVisitor + CurrentSpQuery {
    /// Create an instance sized for `tree`.
    fn for_tree(tree: &ParseTree) -> Self
    where
        Self: Sized;

    /// Human-readable algorithm name (used by benches and examples).
    fn name(&self) -> &'static str;

    /// Approximate heap bytes used by the maintenance structures
    /// (the "space" column of Figure 3).
    fn space_bytes(&self) -> usize;
}

/// Run `A` over the whole tree with a serial left-to-right walk and return the
/// fully built structure (no queries issued during the walk).
pub fn run_serial<A: OnTheFlySp>(tree: &ParseTree) -> A {
    let mut alg = A::for_tree(tree);
    walk_visitor(tree, &mut alg);
    alg
}

/// Run `A` over the whole tree, invoking `on_thread(&alg, thread)` right after
/// each thread is visited — i.e. while that thread is the currently executing
/// one.  This is how a race detector uses the structure: it issues
/// `precedes_current` queries for every shadowed memory access performed by
/// the thread.
pub fn run_serial_with_queries<A, F>(tree: &ParseTree, mut on_thread: F) -> A
where
    A: OnTheFlySp,
    F: FnMut(&A, ThreadId),
{
    struct Driver<'a, A, F> {
        alg: A,
        on_thread: &'a mut F,
    }
    impl<A: OnTheFlySp, F: FnMut(&A, ThreadId)> TreeVisitor for Driver<'_, A, F> {
        fn enter_internal(&mut self, tree: &ParseTree, node: sptree::tree::NodeId) {
            self.alg.enter_internal(tree, node);
        }
        fn between_children(&mut self, tree: &ParseTree, node: sptree::tree::NodeId) {
            self.alg.between_children(tree, node);
        }
        fn leave_internal(&mut self, tree: &ParseTree, node: sptree::tree::NodeId) {
            self.alg.leave_internal(tree, node);
        }
        fn visit_thread(
            &mut self,
            tree: &ParseTree,
            node: sptree::tree::NodeId,
            thread: ThreadId,
        ) {
            self.alg.visit_thread(tree, node, thread);
            (self.on_thread)(&self.alg, thread);
        }
    }
    let mut driver = Driver {
        alg: A::for_tree(tree),
        on_thread: &mut on_thread,
    };
    walk_visitor(tree, &mut driver);
    driver.alg
}

// ---------------------------------------------------------------------------
// Unified backend abstraction
// ---------------------------------------------------------------------------

/// Configuration for building an [`SpBackend`].
///
/// Serial backends ignore everything except the tree; parallel backends
/// (SP-hybrid, the naive locked SP-order) use `workers` as the paper's P.
#[derive(Clone, Copy, Debug)]
pub struct BackendConfig {
    /// Number of workers a parallel backend runs the program on (clamped to
    /// ≥ 1; serial backends ignore it).
    pub workers: usize,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig { workers: 1 }
    }
}

impl BackendConfig {
    /// Serial execution (one worker).
    pub fn serial() -> Self {
        BackendConfig::default()
    }

    /// Run parallel backends on `workers` workers (clamped to ≥ 1).
    pub fn with_workers(workers: usize) -> Self {
        BackendConfig {
            workers: workers.max(1),
        }
    }
}

/// A unified SP-maintenance backend: any structure — serial or parallel —
/// that can execute a program (an SP parse tree) while maintaining the
/// series-parallel relation and answering [`CurrentSpQuery`] queries from the
/// currently executing thread.
///
/// This is the single interface behind which all six maintainers of this
/// repository run: the four serial algorithms of Figure 3 (`SpOrder`,
/// `SpBags`, `EnglishHebrewLabels`, `OffsetSpanLabels`), the naive
/// globally-locked parallel SP-order of §3, and the two-tier SP-hybrid of
/// §4–§7.  One generic race-detection engine (`racedet::detect_races`) and
/// one differential conformance harness (the `spconform` crate) drive every
/// backend through it.
///
/// The lifetime `'t` is the lifetime of the parse tree; parallel backends
/// borrow the tree, serial backends ignore the lifetime.
///
/// ```
/// use spmaint::api::{BackendConfig, CurrentSpQuery, SpBackend};
/// use spmaint::SpOrder;
/// use sptree::{builder::Ast, tree::ThreadId};
///
/// // S(u0, P(u1, u2)): u0 runs before the parallel pair u1 ∥ u2.
/// let tree = Ast::seq(vec![Ast::leaf(1), Ast::par(vec![Ast::leaf(1), Ast::leaf(1)])]).build();
/// let mut backend: SpOrder = SpOrder::build(&tree, BackendConfig::serial());
/// backend.run_with_queries(&tree, |q, current| {
///     if current == ThreadId(2) {
///         assert!(q.precedes_current(ThreadId(0))); // serial prefix
///         assert!(q.parallel_with_current(ThreadId(1))); // sibling branch
///     }
/// });
/// assert!(backend.backend_space_bytes() > 0);
/// ```
pub trait SpBackend<'t>: Sized {
    /// Build an instance for `tree` under `config`.
    fn build(tree: &'t ParseTree, config: BackendConfig) -> Self;

    /// Execute the whole program once, invoking `on_thread(queries, thread)`
    /// while each thread is the currently executing one.  `queries` answers
    /// [`CurrentSpQuery`] queries against any *already executed* thread.
    ///
    /// Serial backends call `on_thread` in left-to-right (serial execution)
    /// order; parallel backends call it concurrently from their workers, which
    /// is why the callback must be `Fn + Sync`.  `tree` must be the tree the
    /// backend was built for.  The method is single-shot: it consumes the
    /// "unfolding" of the program, so call it at most once per instance.
    fn run_with_queries<F>(&mut self, tree: &'t ParseTree, on_thread: F)
    where
        F: Fn(&dyn CurrentSpQuery, ThreadId) + Sync;

    /// Human-readable backend name (used by benches, the conformance harness
    /// and failure reports).
    fn backend_name(&self) -> &'static str;

    /// Approximate heap bytes used by the maintenance structures.
    fn backend_space_bytes(&self) -> usize;
}

/// Extension trait for backends that also answer **arbitrary-pair**
/// [`SpQuery`] queries once (or while) the program has run — SP-order, the
/// two label-based baselines, and the naive locked SP-order.  SP-bags and
/// SP-hybrid deliberately do not qualify: they only support the weaker
/// current-thread semantics (which is all a race detector needs).
///
/// Blanket-implemented; `B: FullSpBackend` is exactly `B: SpBackend + SpQuery`.
pub trait FullSpBackend<'t>: SpBackend<'t> + SpQuery {}

impl<'t, B: SpBackend<'t> + SpQuery> FullSpBackend<'t> for B {}

/// Drive a serial [`OnTheFlySp`] algorithm through a left-to-right walk,
/// surfacing the algorithm as a `&dyn CurrentSpQuery` to `on_thread` while
/// each thread is current.  This is the shared `run_with_queries`
/// implementation of every serial backend.
pub fn run_serial_backend<A: OnTheFlySp>(
    alg: &mut A,
    tree: &ParseTree,
    on_thread: &(dyn Fn(&dyn CurrentSpQuery, ThreadId) + Sync),
) {
    struct Driver<'a, A> {
        alg: &'a mut A,
        on_thread: &'a (dyn Fn(&dyn CurrentSpQuery, ThreadId) + Sync),
    }
    impl<A: OnTheFlySp> TreeVisitor for Driver<'_, A> {
        fn enter_internal(&mut self, tree: &ParseTree, node: sptree::tree::NodeId) {
            self.alg.enter_internal(tree, node);
        }
        fn between_children(&mut self, tree: &ParseTree, node: sptree::tree::NodeId) {
            self.alg.between_children(tree, node);
        }
        fn leave_internal(&mut self, tree: &ParseTree, node: sptree::tree::NodeId) {
            self.alg.leave_internal(tree, node);
        }
        fn visit_thread(&mut self, tree: &ParseTree, node: sptree::tree::NodeId, thread: ThreadId) {
            self.alg.visit_thread(tree, node, thread);
            (self.on_thread)(&*self.alg, thread);
        }
    }
    walk_visitor(tree, &mut Driver { alg, on_thread });
}

/// Implements [`SpBackend`] for a serial [`OnTheFlySp`] algorithm.  A macro
/// rather than a blanket impl so that downstream crates (sphybrid) can
/// implement `SpBackend` for their own parallel structures without coherence
/// conflicts.
macro_rules! impl_serial_sp_backend {
    ($($ty:ty),+ $(,)?) => {$(
        impl<'t> SpBackend<'t> for $ty {
            fn build(tree: &'t ParseTree, _config: BackendConfig) -> Self {
                <Self as OnTheFlySp>::for_tree(tree)
            }
            fn run_with_queries<F>(&mut self, tree: &'t ParseTree, on_thread: F)
            where
                F: Fn(&dyn CurrentSpQuery, ThreadId) + Sync,
            {
                run_serial_backend(self, tree, &on_thread);
            }
            fn backend_name(&self) -> &'static str {
                <Self as OnTheFlySp>::name(self)
            }
            fn backend_space_bytes(&self) -> usize {
                <Self as OnTheFlySp>::space_bytes(self)
            }
        }
    )+};
}

impl_serial_sp_backend!(crate::SpBags, crate::EnglishHebrewLabels, crate::OffsetSpanLabels);

// SP-order is generic over its order-maintenance structure, so it gets a
// hand-written impl with the extra type parameter.
impl<'t, L: om::OrderMaintenance> SpBackend<'t> for crate::SpOrder<L> {
    fn build(tree: &'t ParseTree, _config: BackendConfig) -> Self {
        <Self as OnTheFlySp>::for_tree(tree)
    }
    fn run_with_queries<F>(&mut self, tree: &'t ParseTree, on_thread: F)
    where
        F: Fn(&dyn CurrentSpQuery, ThreadId) + Sync,
    {
        run_serial_backend(self, tree, &on_thread);
    }
    fn backend_name(&self) -> &'static str {
        <Self as OnTheFlySp>::name(self)
    }
    fn backend_space_bytes(&self) -> usize {
        <Self as OnTheFlySp>::space_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnglishHebrewLabels, OffsetSpanLabels, SpBags, SpOrder};
    use sptree::generate::random_sp_ast;
    use sptree::oracle::SpOracle;

    #[test]
    fn run_serial_with_queries_sees_threads_in_order() {
        let tree = random_sp_ast(50, 0.5, 5).build();
        let mut seen = Vec::new();
        let _alg: SpOrder = run_serial_with_queries(&tree, |_alg, t| seen.push(t.index()));
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn queries_during_walk_match_oracle_for_sp_order() {
        let tree = random_sp_ast(60, 0.5, 6).build();
        let oracle = SpOracle::new(&tree);
        let _alg = run_serial_with_queries::<SpOrder, _>(&tree, |alg, current| {
            for earlier in 0..current.index() as u32 {
                let earlier = ThreadId(earlier);
                assert_eq!(
                    alg.precedes_current(earlier),
                    oracle.precedes(earlier, current),
                );
            }
        });
    }

    /// Generic over the unified trait: every serial backend must agree with
    /// the oracle on every current-thread query issued during the run.
    fn backend_matches_oracle<B: for<'t> SpBackend<'t>>(seed: u64) {
        let tree = random_sp_ast(50, 0.5, seed).build();
        let oracle = SpOracle::new(&tree);
        let mut backend = B::build(&tree, BackendConfig::serial());
        let mismatches = std::sync::Mutex::new(Vec::new());
        backend.run_with_queries(&tree, |q, current| {
            for earlier in 0..current.index() as u32 {
                let earlier = ThreadId(earlier);
                if q.precedes_current(earlier) != oracle.precedes(earlier, current) {
                    mismatches.lock().unwrap().push((earlier, current));
                }
            }
        });
        assert!(
            mismatches.lock().unwrap().is_empty(),
            "{} disagrees with oracle: {:?}",
            backend.backend_name(),
            mismatches.lock().unwrap()
        );
        assert!(backend.backend_space_bytes() > 0);
    }

    #[test]
    fn all_serial_backends_match_oracle_through_unified_trait() {
        backend_matches_oracle::<SpOrder>(11);
        backend_matches_oracle::<SpBags>(11);
        backend_matches_oracle::<EnglishHebrewLabels>(11);
        backend_matches_oracle::<OffsetSpanLabels>(11);
    }

    #[test]
    fn full_backends_answer_pair_queries_after_the_run() {
        fn check<B: for<'t> FullSpBackend<'t>>() {
            let tree = random_sp_ast(40, 0.5, 3).build();
            let oracle = SpOracle::new(&tree);
            let mut backend = B::build(&tree, BackendConfig::serial());
            backend.run_with_queries(&tree, |_q, _t| {});
            for a in 0..tree.num_threads() as u32 {
                for b in 0..tree.num_threads() as u32 {
                    assert_eq!(
                        backend.relation(ThreadId(a), ThreadId(b)),
                        oracle.relation(ThreadId(a), ThreadId(b)),
                        "{} pair query ({a},{b})",
                        backend.backend_name()
                    );
                }
            }
        }
        check::<SpOrder>();
        check::<EnglishHebrewLabels>();
        check::<OffsetSpanLabels>();
    }

    #[test]
    fn backend_config_clamps_workers() {
        assert_eq!(BackendConfig::with_workers(0).workers, 1);
        assert_eq!(BackendConfig::with_workers(8).workers, 8);
        assert_eq!(BackendConfig::serial().workers, 1);
    }
}

//! Common interfaces of the serial SP-maintenance algorithms.
//!
//! Two query flavours exist, matching the paper:
//!
//! * [`SpQuery`] — answer the relation between **any** two already-executed
//!   threads.  SP-order and the two label-based baselines provide this.
//! * [`CurrentSpQuery`] — answer the relation between an already-executed
//!   thread and the **currently executing** thread only.  These are the
//!   weaker semantics of SP-bags (and of SP-hybrid), and they are exactly what
//!   an on-the-fly race detector needs.
//!
//! Algorithms are built "on the fly" by feeding them the left-to-right walk of
//! the parse tree through [`sptree::walk::TreeVisitor`]; [`OnTheFlySp`] adds
//! the constructor and introspection the drivers and benchmarks need.

use sptree::oracle::Relation;
use sptree::tree::{ParseTree, ThreadId};
use sptree::walk::{walk_visitor, TreeVisitor};

/// Relation queries between two arbitrary already-executed threads.
pub trait SpQuery {
    /// Does `a` logically precede `b` (`a ≺ b`)?
    fn precedes(&self, a: ThreadId, b: ThreadId) -> bool;

    /// Do `a` and `b` operate logically in parallel (`a ∥ b`)?
    fn parallel(&self, a: ThreadId, b: ThreadId) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// Full relation between two threads.
    fn relation(&self, a: ThreadId, b: ThreadId) -> Relation {
        if a == b {
            Relation::Same
        } else if self.precedes(a, b) {
            Relation::Precedes
        } else if self.precedes(b, a) {
            Relation::Follows
        } else {
            Relation::Parallel
        }
    }
}

/// Relation queries against the currently executing thread only.
pub trait CurrentSpQuery {
    /// Does `earlier` logically precede the currently executing thread?
    fn precedes_current(&self, earlier: ThreadId) -> bool;

    /// Does `earlier` operate logically in parallel with the currently
    /// executing thread?
    fn parallel_with_current(&self, earlier: ThreadId) -> bool {
        !self.precedes_current(earlier)
    }
}

/// Every algorithm that answers pair queries trivially also answers
/// current-thread queries once told which thread is current; the serial
/// drivers take care of that, so a blanket impl is not provided — instead the
/// per-algorithm impls record the current thread in `visit_thread`.
///
/// An on-the-fly serial SP-maintenance algorithm.
pub trait OnTheFlySp: TreeVisitor + CurrentSpQuery {
    /// Create an instance sized for `tree`.
    fn for_tree(tree: &ParseTree) -> Self
    where
        Self: Sized;

    /// Human-readable algorithm name (used by benches and examples).
    fn name(&self) -> &'static str;

    /// Approximate heap bytes used by the maintenance structures
    /// (the "space" column of Figure 3).
    fn space_bytes(&self) -> usize;
}

/// Run `A` over the whole tree with a serial left-to-right walk and return the
/// fully built structure (no queries issued during the walk).
pub fn run_serial<A: OnTheFlySp>(tree: &ParseTree) -> A {
    let mut alg = A::for_tree(tree);
    walk_visitor(tree, &mut alg);
    alg
}

/// Run `A` over the whole tree, invoking `on_thread(&alg, thread)` right after
/// each thread is visited — i.e. while that thread is the currently executing
/// one.  This is how a race detector uses the structure: it issues
/// `precedes_current` queries for every shadowed memory access performed by
/// the thread.
pub fn run_serial_with_queries<A, F>(tree: &ParseTree, mut on_thread: F) -> A
where
    A: OnTheFlySp,
    F: FnMut(&A, ThreadId),
{
    struct Driver<'a, A, F> {
        alg: A,
        on_thread: &'a mut F,
    }
    impl<A: OnTheFlySp, F: FnMut(&A, ThreadId)> TreeVisitor for Driver<'_, A, F> {
        fn enter_internal(&mut self, tree: &ParseTree, node: sptree::tree::NodeId) {
            self.alg.enter_internal(tree, node);
        }
        fn between_children(&mut self, tree: &ParseTree, node: sptree::tree::NodeId) {
            self.alg.between_children(tree, node);
        }
        fn leave_internal(&mut self, tree: &ParseTree, node: sptree::tree::NodeId) {
            self.alg.leave_internal(tree, node);
        }
        fn visit_thread(
            &mut self,
            tree: &ParseTree,
            node: sptree::tree::NodeId,
            thread: ThreadId,
        ) {
            self.alg.visit_thread(tree, node, thread);
            (self.on_thread)(&self.alg, thread);
        }
    }
    let mut driver = Driver {
        alg: A::for_tree(tree),
        on_thread: &mut on_thread,
    };
    walk_visitor(tree, &mut driver);
    driver.alg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpOrder;
    use sptree::generate::random_sp_ast;
    use sptree::oracle::SpOracle;

    #[test]
    fn run_serial_with_queries_sees_threads_in_order() {
        let tree = random_sp_ast(50, 0.5, 5).build();
        let mut seen = Vec::new();
        let _alg: SpOrder = run_serial_with_queries(&tree, |_alg, t| seen.push(t.index()));
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn queries_during_walk_match_oracle_for_sp_order() {
        let tree = random_sp_ast(60, 0.5, 6).build();
        let oracle = SpOracle::new(&tree);
        let _alg = run_serial_with_queries::<SpOrder, _>(&tree, |alg, current| {
            for earlier in 0..current.index() as u32 {
                let earlier = ThreadId(earlier);
                assert_eq!(
                    alg.precedes_current(earlier),
                    oracle.precedes(earlier, current),
                );
            }
        });
    }
}

//! The SP-order algorithm (paper §2, Figure 5).
//!
//! Two order-maintenance lists are kept: an *English* order `Eng` and a
//! *Hebrew* order `Heb` over parse-tree nodes.  When the walk reaches an
//! internal node `X`, its two children are inserted immediately after `X` in
//! both lists — in the order (left, right) in `Eng`; in the order
//! (left, right) in `Heb` if `X` is an S-node, and (right, left) if `X` is a
//! P-node (Figures 6 and 7).  By Lemma 1 / Corollary 2,
//!
//! * `a ≺ b`  ⇔  `a` precedes `b` in **both** orders,
//! * `a ∥ b`  ⇔  `a` precedes `b` in one order and follows it in the other.
//!
//! With an O(1)-amortized order-maintenance structure every SP-order operation
//! is O(1) amortized, which gives the O(n) total construction time of
//! Theorem 5 and the O(T₁) race-detection bound of Corollary 6.
//!
//! The implementation is generic over the order-maintenance structure so the
//! benchmarks can compare the O(1)-amortized two-level list with the simpler
//! single-level list ([`om::TagList`]).

use om::{OmNode, OrderMaintenance, TwoLevelList};
use sptree::tree::{NodeId, NodeKind, ParseTree, ThreadId};
use sptree::walk::TreeVisitor;

use crate::api::{CurrentSpQuery, OnTheFlySp, SpQuery};

/// SP-order over an arbitrary order-maintenance implementation.
pub struct SpOrder<L: OrderMaintenance = TwoLevelList> {
    eng: L,
    heb: L,
    /// English-order handle of every parse-tree node (by `NodeId`).
    node_eng: Vec<OmNode>,
    /// Hebrew-order handle of every parse-tree node.
    node_heb: Vec<OmNode>,
    /// Whether a node has been inserted yet (the root is inserted up front;
    /// other nodes when their parent is visited).
    inserted: Vec<bool>,
    /// Leaf node of every thread (copied from the tree so queries need no tree
    /// reference).
    leaf_of: Vec<NodeId>,
    /// The currently executing thread, for [`CurrentSpQuery`].
    current: Option<ThreadId>,
}

impl<L: OrderMaintenance> SpOrder<L> {
    /// English/Hebrew order handles of a node (test/diagnostic aid).
    pub fn handles(&self, node: NodeId) -> (OmNode, OmNode) {
        (self.node_eng[node.index()], self.node_heb[node.index()])
    }

    /// Has `node` been inserted into the orders yet?
    pub fn is_inserted(&self, node: NodeId) -> bool {
        self.inserted[node.index()]
    }

    /// Relation between two parse-tree nodes (not just leaves).  Both must
    /// already be inserted.  This is the raw `SP-PRECEDES` of Figure 5.
    pub fn node_precedes(&self, x: NodeId, y: NodeId) -> bool {
        debug_assert!(self.inserted[x.index()] && self.inserted[y.index()]);
        let ex = self.node_eng[x.index()];
        let ey = self.node_eng[y.index()];
        let hx = self.node_heb[x.index()];
        let hy = self.node_heb[y.index()];
        self.eng.precedes(ex, ey) && self.heb.precedes(hx, hy)
    }

    /// Total relabeling work done by the two underlying lists.
    pub fn relabel_count(&self) -> u64 {
        self.eng.relabel_count() + self.heb.relabel_count()
    }
}

impl<L: OrderMaintenance> TreeVisitor for SpOrder<L> {
    fn enter_internal(&mut self, tree: &ParseTree, node: NodeId) {
        debug_assert!(self.inserted[node.index()], "parent must be inserted first");
        let left = tree.left(node);
        let right = tree.right(node);

        // English order: insert (left, right) after X — line 4 of Figure 5.
        let eng = self
            .eng
            .insert_after_many(self.node_eng[node.index()], 2);
        self.node_eng[left.index()] = eng[0];
        self.node_eng[right.index()] = eng[1];

        // Hebrew order: (left, right) after X for an S-node, (right, left) for
        // a P-node — lines 5–7 of Figure 5.
        let heb = self
            .heb
            .insert_after_many(self.node_heb[node.index()], 2);
        match tree.kind(node) {
            NodeKind::S => {
                self.node_heb[left.index()] = heb[0];
                self.node_heb[right.index()] = heb[1];
            }
            NodeKind::P => {
                self.node_heb[right.index()] = heb[0];
                self.node_heb[left.index()] = heb[1];
            }
            NodeKind::Leaf(_) => unreachable!("enter_internal on a leaf"),
        }
        self.inserted[left.index()] = true;
        self.inserted[right.index()] = true;
    }

    fn visit_thread(&mut self, _tree: &ParseTree, node: NodeId, thread: ThreadId) {
        debug_assert!(self.inserted[node.index()]);
        self.current = Some(thread);
    }
}

impl<L: OrderMaintenance> SpQuery for SpOrder<L> {
    fn precedes(&self, a: ThreadId, b: ThreadId) -> bool {
        if a == b {
            return false;
        }
        self.node_precedes(self.leaf_of[a.index()], self.leaf_of[b.index()])
    }
}

impl<L: OrderMaintenance> CurrentSpQuery for SpOrder<L> {
    fn precedes_current(&self, earlier: ThreadId) -> bool {
        let current = self.current.expect("no thread is currently executing");
        self.precedes(earlier, current)
    }
}

impl<L: OrderMaintenance> OnTheFlySp for SpOrder<L> {
    fn for_tree(tree: &ParseTree) -> Self {
        let n = tree.num_nodes();
        let (mut eng, eng_base) = L::new();
        let (mut heb, heb_base) = L::new();
        // The root is inserted right after the base element of each list.
        let root_eng = eng.insert_after(eng_base);
        let root_heb = heb.insert_after(heb_base);
        let mut node_eng = vec![eng_base; n];
        let mut node_heb = vec![heb_base; n];
        let mut inserted = vec![false; n];
        node_eng[tree.root().index()] = root_eng;
        node_heb[tree.root().index()] = root_heb;
        inserted[tree.root().index()] = true;
        SpOrder {
            eng,
            heb,
            node_eng,
            node_heb,
            inserted,
            leaf_of: tree.thread_ids().map(|t| tree.leaf_of(t)).collect(),
            current: None,
        }
    }

    fn name(&self) -> &'static str {
        "sp-order"
    }

    fn space_bytes(&self) -> usize {
        self.eng.space_bytes()
            + self.heb.space_bytes()
            + self.node_eng.capacity() * std::mem::size_of::<OmNode>() * 2
            + self.inserted.capacity()
            + self.leaf_of.capacity() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{run_serial, run_serial_with_queries};
    use om::TagList;
    use sptree::builder::Ast;
    use sptree::generate::{flat_parallel_loop, random_sp_ast, serial_chain};
    use sptree::oracle::{Relation, SpOracle};

    fn assert_matches_oracle(tree: &ParseTree) {
        let oracle = SpOracle::new(tree);
        let alg: SpOrder = run_serial(tree);
        for a in tree.thread_ids() {
            for b in tree.thread_ids() {
                assert_eq!(
                    alg.relation(a, b),
                    oracle.relation(a, b),
                    "threads {a:?}, {b:?}"
                );
            }
        }
    }

    #[test]
    fn snode_insert_order() {
        // Figure 6: at an S-node, both orders become ⟨S, L, R⟩.
        let tree = Ast::seq(vec![Ast::leaf(1), Ast::leaf(1)]).build();
        let alg: SpOrder = run_serial(&tree);
        let root = tree.root();
        let l = tree.left(root);
        let r = tree.right(root);
        assert!(alg.node_precedes(l, r));
        assert!(!alg.node_precedes(r, l));
        // The root precedes both children in the English order but the root
        // relation to children mixes orders; just check thread-level result.
        assert_eq!(alg.relation(ThreadId(0), ThreadId(1)), Relation::Precedes);
    }

    #[test]
    fn pnode_insert_order() {
        // Figure 7: at a P-node the Hebrew order reverses the children, so the
        // two leaves are parallel.
        let tree = Ast::par(vec![Ast::leaf(1), Ast::leaf(1)]).build();
        let alg: SpOrder = run_serial(&tree);
        assert_eq!(alg.relation(ThreadId(0), ThreadId(1)), Relation::Parallel);
        assert_eq!(alg.relation(ThreadId(1), ThreadId(0)), Relation::Parallel);
    }

    #[test]
    fn serial_chain_and_flat_loop() {
        assert_matches_oracle(&serial_chain(40, 1).build());
        assert_matches_oracle(&flat_parallel_loop(40, 1).build());
    }

    #[test]
    fn random_trees_match_oracle() {
        for seed in 0..10u64 {
            let tree = random_sp_ast(80, 0.5, seed).build();
            assert_matches_oracle(&tree);
        }
    }

    #[test]
    fn random_trees_match_oracle_with_tag_list_backend() {
        for seed in 0..5u64 {
            let tree = random_sp_ast(80, 0.4, seed).build();
            let oracle = SpOracle::new(&tree);
            let alg: SpOrder<TagList> = run_serial(&tree);
            for a in tree.thread_ids() {
                for b in tree.thread_ids() {
                    assert_eq!(alg.relation(a, b), oracle.relation(a, b));
                }
            }
        }
    }

    #[test]
    fn on_the_fly_queries_are_available_immediately() {
        // Every already-executed thread must be queryable while any later
        // thread is current (Theorem 4).
        let tree = random_sp_ast(70, 0.6, 77).build();
        let oracle = SpOracle::new(&tree);
        let _alg = run_serial_with_queries::<SpOrder, _>(&tree, |alg, current| {
            for earlier in 0..=current.index() as u32 {
                let earlier = ThreadId(earlier);
                if earlier == current {
                    continue;
                }
                assert_eq!(
                    alg.precedes_current(earlier),
                    oracle.precedes(earlier, current)
                );
                assert_eq!(
                    alg.parallel_with_current(earlier),
                    oracle.parallel(earlier, current)
                );
            }
        });
    }

    #[test]
    fn construction_inserts_every_node_once() {
        let tree = random_sp_ast(120, 0.5, 3).build();
        let alg: SpOrder = run_serial(&tree);
        for node in tree.node_ids() {
            assert!(alg.is_inserted(node));
        }
        // Each list holds every node plus its base element.
        assert_eq!(alg.eng.len(), tree.num_nodes() + 1);
        assert_eq!(alg.heb.len(), tree.num_nodes() + 1);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn prop_sp_order_matches_oracle(leaves in 2usize..120, p in 0.0f64..1.0, seed in 0u64..1_000_000) {
            let tree = random_sp_ast(leaves, p, seed).build();
            let oracle = SpOracle::new(&tree);
            let alg: SpOrder = run_serial(&tree);
            for a in tree.thread_ids() {
                for b in tree.thread_ids() {
                    proptest::prop_assert_eq!(alg.relation(a, b), oracle.relation(a, b));
                }
            }
        }
    }
}

//! Differential conformance harness for the SP-maintenance backends.
//!
//! The paper's central claim is that SP-order, SP-bags, the two label-based
//! baselines, the naive locked SP-order, and SP-hybrid all answer the *same*
//! series-parallel queries with different cost profiles.  This crate checks
//! that claim mechanically: it generates random Cilk programs in several
//! shapes, drives **every** backend through the unified
//! [`spmaint::SpBackend`] trait over the same program, and cross-checks
//!
//! * every current-thread `SP-PRECEDES` answer issued *during* the run
//!   against the [`SpOracle`] LCA ground truth,
//! * every arbitrary-pair relation of the full backends
//!   ([`spmaint::FullSpBackend`]) after the run,
//! * the race reports of the generic detection engine
//!   ([`racedet::detect_races`]) across all backend instantiations —
//!   bit-identical for deterministic single-worker runs, equal racy-location
//!   sets (and equal to the injected ground truth) for multi-worker runs,
//! * fully random read/write *access scripts* (no planted ground truth)
//!   against a brute-force parallel-conflict oracle: serial backends must
//!   find exactly the oracle's racy locations with bit-identical reports —
//!   the differential exercise of the reader-replacement rule — while
//!   multi-worker runs are held to soundness ([`check_random_scripts`]).
//!
//! Failures are minimized with the `proptest` shrinker to a replayable
//! `(shape, size, seed)` triple plus the shrunk parse tree, so a red run
//! prints something a human can act on instead of a 300-thread random dump.
//!
//! The sweep entry point [`run_sweep`] honors two environment variables:
//! `SPCONFORM_SEED` (base seed, default `0xC0FFEE`) and `SPCONFORM_CASES`
//! (cases per shape, default 200) — CI runs the sweep under several seeds.
//!
//! The shape generators double as handy deterministic program factories.
//! Build a tree, script two parallel writes, detect, assert the race:
//!
//! ```
//! use racedet::{detect_races, Access, AccessScript};
//! use spconform::ShapeKind;
//! use spmaint::{BackendConfig, SpOrder};
//! use sptree::tree::ThreadId;
//!
//! let tree = ShapeKind::ParallelLoop.build_tree(4, 7);
//! let mut script = AccessScript::new(tree.num_threads(), 1);
//! script.push(ThreadId(1), Access::write(0)); // two parallel loop iterations
//! script.push(ThreadId(3), Access::write(0)); // write the same location
//! let (report, _) = detect_races::<SpOrder>(&tree, &script, BackendConfig::serial());
//! assert_eq!(report.racy_locations(), vec![0]);
//! ```

use parking_lot::Mutex;
use racedet::detect_races;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spmaint::api::{BackendConfig, SpBackend};
use spmaint::{EnglishHebrewLabels, OffsetSpanLabels, SpBags, SpOrder, SpQuery};
use sphybrid::{HybridBackend, NaiveBackend};
use sptree::cilk::{CilkProgram, Procedure, SyncBlock};
use sptree::generate::{random_cilk_program, random_sp_ast, CilkGenParams};
use sptree::oracle::SpOracle;
use sptree::tree::{NodeKind, ParseTree, ThreadId};
use std::sync::atomic::{AtomicBool, Ordering};
use workloads::{
    bfs_plan, bfs_procedure, branch_bound_plan, branch_bound_procedure, disjoint_writes,
    inject_races, power_law_digraph, quicksort_input, quicksort_procedure, racy_locations_oracle,
    random_mixed_script, reduction_input, reduction_plan, reduction_procedure, uniform_digraph,
};

pub mod live;
pub mod service;

pub use live::{check_live_case, minimize_live_failure, run_live_sweep, LiveFailure, LiveSweepStats};
pub use service::{
    check_service_case, minimize_service_failure, run_service_sweep, ServiceFailure,
    ServiceSweepStats,
};

// ---------------------------------------------------------------------------
// Program shapes
// ---------------------------------------------------------------------------

/// The program-shape families the harness sweeps over.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShapeKind {
    /// Randomized divide-and-conquer recursion (fib-style spawning).
    DivideAndConquer,
    /// One sync block spawning every iteration (Cilk `for … spawn; sync`).
    ParallelLoop,
    /// A chain of procedures each spawning one child: maximal spawn nesting.
    DeepNesting,
    /// Fully random canonical Cilk program ([`random_cilk_program`]).
    RandomCilk,
    /// Deep spawn chains hanging off a wide parallel loop: the
    /// unbounded-growth stressor.  Sized so that live runs with tiny
    /// capacity hints cross several chunk boundaries of the growable
    /// SP-hybrid substrates on every seed.
    GrowthStress,
    /// Fair-chunked parallel BFS over a seeded digraph
    /// ([`workloads::graphs`]): per level one serial statement (init or
    /// merge) plus one spawn per frontier chunk.  Seed picks the degree skew
    /// (uniform vs power-law) and the chunk granularity, so skewed frontiers
    /// ride every sweep.
    GraphBfs,
    /// Pivot-driven parallel quicksort over a seeded array
    /// ([`workloads::datadep`]): the recursion tree is a function of the
    /// input *values* (each node spawns its two partition halves and places
    /// the pivot), so the realized shape is data-dependent while staying a
    /// pure function of `(size, seed)`.
    Quicksort,
    /// Level-synchronous branch-and-bound with feasibility and bound
    /// pruning ([`workloads::datadep`]): which nodes each level spawns
    /// depends on the plan-precomputed incumbent, per level one serial
    /// publish statement plus one spawn per surviving node.
    BranchBound,
    /// Reduction whose recursion depth varies with the local value spread
    /// ([`workloads::datadep`]): segments split only where the data is
    /// rough, so subtree depths differ across the array.
    DataReduction,
    /// Random series-parallel tree that is *not* in canonical Cilk form;
    /// exercises every backend except SP-hybrid (which, like the paper,
    /// assumes Cilk canonical form).
    RandomSp,
}

impl ShapeKind {
    /// Every shape, in sweep order.
    pub const ALL: [ShapeKind; 10] = [
        ShapeKind::DivideAndConquer,
        ShapeKind::ParallelLoop,
        ShapeKind::DeepNesting,
        ShapeKind::RandomCilk,
        ShapeKind::GrowthStress,
        ShapeKind::GraphBfs,
        ShapeKind::Quicksort,
        ShapeKind::BranchBound,
        ShapeKind::DataReduction,
        ShapeKind::RandomSp,
    ];

    /// Look a shape up by its [`name`](Self::name) (the spelling reports and
    /// the `SPCONFORM_SHAPE` env knob use).
    pub fn by_name(name: &str) -> Option<ShapeKind> {
        ShapeKind::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ShapeKind::DivideAndConquer => "divide-and-conquer",
            ShapeKind::ParallelLoop => "parallel-loop",
            ShapeKind::DeepNesting => "deep-nesting",
            ShapeKind::RandomCilk => "random-cilk",
            ShapeKind::GrowthStress => "growth-stress",
            ShapeKind::GraphBfs => "graph-bfs",
            ShapeKind::Quicksort => "quicksort",
            ShapeKind::BranchBound => "branch-bound",
            ShapeKind::DataReduction => "data-reduction",
            ShapeKind::RandomSp => "random-sp",
        }
    }

    /// Whether trees of this shape are in canonical Cilk form (a
    /// precondition of the SP-hybrid backend).
    pub fn is_cilk_form(self) -> bool {
        !matches!(self, ShapeKind::RandomSp)
    }

    /// Build the deterministic Cilk *procedure* for `(self, size, seed)` —
    /// `None` for [`ShapeKind::RandomSp`], which is not in canonical Cilk
    /// form.  The live conformance harness runs these same procedures
    /// through the `spprog` API, so the two sweeps cover identical program
    /// families.
    pub fn build_procedure(self, size: u32, seed: u64) -> Option<Procedure> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5BC0_4F02);
        match self {
            ShapeKind::DivideAndConquer => {
                let depth = 2 + size / 6; // 4..=28 → depth 2..=6
                Some(dandc_proc(depth.min(6), &mut rng))
            }
            ShapeKind::ParallelLoop => {
                let iterations = 1 + size as usize + rng.gen_range(0..3usize);
                let mut block = SyncBlock::new().work(1);
                for _ in 0..iterations {
                    block = block.spawn(Procedure::single(
                        SyncBlock::new().work(1 + rng.gen_range(0..3u64)),
                    ));
                }
                Some(Procedure::single(block.work(1)))
            }
            ShapeKind::DeepNesting => {
                let depth = 1 + size;
                let mut proc = Procedure::single(SyncBlock::new().work(1));
                for _ in 0..depth {
                    proc = Procedure::single(SyncBlock::new().work(1).spawn(proc));
                }
                Some(proc)
            }
            ShapeKind::RandomCilk => {
                let params = CilkGenParams {
                    max_depth: 2 + size / 6,
                    max_blocks: 2,
                    max_stmts: 3,
                    spawn_prob: 0.45 + (seed % 20) as f64 / 100.0,
                    work: 2,
                };
                Some(random_cilk_program(params, seed))
            }
            ShapeKind::GrowthStress => {
                // Deep spawn chains hanging off a wide parallel loop.  The
                // live conformance harness runs these with tiny substrate
                // hints, so the per-seed thread count (hundreds) forces
                // multiple chunk publications in the union-find, and the
                // nesting gives steals plenty of continuations to split.
                // `size` saturates at 16 to keep debug-mode sweeps affordable
                // (still hundreds of threads — dozens of chunk crossings with
                // the conformance harness's hint of 4).
                let depth = 4 + size.min(16);
                let mut chain = Procedure::single(SyncBlock::new().work(1));
                for _ in 0..depth {
                    chain = Procedure::single(SyncBlock::new().work(1).spawn(chain));
                }
                let width = 4 + 2 * size.min(16) as usize;
                let mut block = SyncBlock::new().work(1);
                for _ in 0..width {
                    block = block.spawn(if rng.gen_bool(0.5) {
                        chain.clone()
                    } else {
                        Procedure::single(SyncBlock::new().work(1 + rng.gen_range(0..2u64)))
                    });
                }
                Some(Procedure::single(block.work(1)))
            }
            ShapeKind::GraphBfs => {
                // Node count scales with size; the seed picks uniform vs
                // power-law degree skew and the nodes-per-chunk granularity.
                // The procedure is the exact spawn structure of the live
                // fair-BFS program (`workloads::live_graph_bfs`) on the same
                // graph, so both sweeps traverse identical frontiers.
                let n = 4 + size * 3;
                let graph = if seed % 2 == 0 {
                    uniform_digraph(n, 2, seed)
                } else {
                    power_law_digraph(n, 2, seed)
                };
                let granularity = 1 + ((seed >> 1) % 4) as u32;
                Some(bfs_procedure(&bfs_plan(&graph, granularity)))
            }
            ShapeKind::Quicksort => {
                // The realized recursion tree depends on the seeded values
                // (pivot choices), but is a pure function of (size, seed) —
                // which is what lets the minimizer shrink `size` without
                // ever mutating a realized tree (see the shrinker note in
                // `minimize_failure`).
                let input = quicksort_input(2 + size, seed);
                Some(quicksort_procedure(&input))
            }
            ShapeKind::BranchBound => {
                // Depth 3..=7; the plan's capacity comes from the full item
                // pool, so deeper searches strictly extend shallower ones
                // (monotone size scaling).
                let depth = 3 + (size / 6).min(4);
                Some(branch_bound_procedure(&branch_bound_plan(depth, seed)))
            }
            ShapeKind::DataReduction => {
                let input = reduction_input(2 + 2 * size, seed);
                Some(reduction_procedure(&reduction_plan(&input, 8)))
            }
            ShapeKind::RandomSp => None,
        }
    }

    /// Build the deterministic tree for `(self, size, seed)`.  `size` scales
    /// the program monotonically (it is the shrink knob of the minimizer);
    /// `seed` varies the random choices.
    pub fn build_tree(self, size: u32, seed: u64) -> ParseTree {
        match self.build_procedure(size, seed) {
            Some(proc) => CilkProgram::new(proc).build_tree(),
            None => random_sp_ast(2 + 2 * size as usize, 0.5, seed).build(),
        }
    }
}

/// Randomized divide-and-conquer procedure: every level spawns two children
/// (the second possibly shallower), with optional serial work around the
/// spawns and an optional second sync block after the join.
fn dandc_proc(depth: u32, rng: &mut StdRng) -> Procedure {
    if depth == 0 {
        return Procedure::single(SyncBlock::new().work(1 + rng.gen_range(0..3u64)));
    }
    let mut block = SyncBlock::new();
    if rng.gen_bool(0.5) {
        block = block.work(1);
    }
    let shallower = depth.saturating_sub(1 + rng.gen_range(0..2u32));
    block = block
        .spawn(dandc_proc(depth - 1, rng))
        .spawn(dandc_proc(shallower, rng))
        .work(1);
    let mut proc = Procedure::new().block(block);
    if rng.gen_bool(0.5) {
        proc = proc.block(SyncBlock::new().work(1));
    }
    proc
}

// ---------------------------------------------------------------------------
// Backends under test
// ---------------------------------------------------------------------------

/// The six SP maintainers driven through [`spmaint::SpBackend`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackendKind {
    /// SP-order (this paper, §2).
    SpOrder,
    /// SP-bags (Feng–Leiserson).
    SpBags,
    /// English-Hebrew static labels (Nudler–Rudolph style).
    EnglishHebrew,
    /// Offset-span labels (Mellor-Crummey).
    OffsetSpan,
    /// Naive globally-locked shared SP-order (§3 strawman).
    Naive,
    /// Two-tier SP-hybrid (§4–§7); requires canonical Cilk form.
    Hybrid,
}

impl BackendKind {
    /// All six backends.
    pub const ALL: [BackendKind; 6] = [
        BackendKind::SpOrder,
        BackendKind::SpBags,
        BackendKind::EnglishHebrew,
        BackendKind::OffsetSpan,
        BackendKind::Naive,
        BackendKind::Hybrid,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::SpOrder => "sp-order",
            BackendKind::SpBags => "sp-bags",
            BackendKind::EnglishHebrew => "english-hebrew",
            BackendKind::OffsetSpan => "offset-span",
            BackendKind::Naive => "naive-locked",
            BackendKind::Hybrid => "sp-hybrid",
        }
    }

    /// Can this backend run programs of the given shape?
    pub fn supports(self, shape: ShapeKind) -> bool {
        self != BackendKind::Hybrid || shape.is_cilk_form()
    }
}

// ---------------------------------------------------------------------------
// One differential case
// ---------------------------------------------------------------------------

/// What one [`check_case`] run did (aggregated by the sweep).
#[derive(Clone, Copy, Debug, Default)]
pub struct CaseStats {
    /// Threads of the generated program.
    pub threads: u64,
    /// Current-thread queries cross-checked against the oracle.
    pub queries: u64,
    /// Arbitrary-pair relations cross-checked on full backends.
    pub pair_queries: u64,
    /// Races injected (and required to be found exactly) in the race check.
    pub injected_races: u64,
    /// Emergent racy locations of the random-mix script check, required to
    /// be found exactly by every serial backend.
    pub emergent_races: u64,
}

/// A single disagreement between a backend and the ground truth.
#[derive(Clone, Debug)]
pub struct Discrepancy {
    /// Backend that disagreed.
    pub backend: &'static str,
    /// What went wrong, human-readable.
    pub detail: String,
}

/// A conformance failure minimized to a replayable case.
#[derive(Clone, Debug)]
pub struct ConformanceFailure {
    /// Shape of the failing program.
    pub shape: ShapeKind,
    /// Minimized size knob.
    pub size: u32,
    /// Seed reproducing the failure (together with shape and size).
    pub seed: u64,
    /// Worker count of the failing configuration.
    pub workers: usize,
    /// The disagreement at the minimized case.
    pub discrepancy: Discrepancy,
    /// The shrunk parse tree, rendered as an S-expression.
    pub tree: String,
}

impl std::fmt::Display for ConformanceFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "conformance failure in backend `{}` (shape={}, size={}, seed={:#x}, workers={})",
            self.discrepancy.backend,
            self.shape.name(),
            self.size,
            self.seed,
            self.workers
        )?;
        writeln!(f, "  {}", self.discrepancy.detail)?;
        writeln!(f, "  shrunk tree: {}", self.tree)?;
        write!(
            f,
            "  replay: spconform::check_case(ShapeKind::{:?}, {}, {:#x}, {})",
            self.shape, self.size, self.seed, self.workers
        )
    }
}

/// Render a parse tree as a compact S-expression: `S(u0, P(u1, u2))`.
pub fn tree_sexpr(tree: &ParseTree) -> String {
    fn rec(tree: &ParseTree, node: sptree::tree::NodeId, out: &mut String) {
        match tree.kind(node) {
            NodeKind::Leaf(t) => out.push_str(&format!("u{}", t.0)),
            kind => {
                out.push(if kind == NodeKind::S { 'S' } else { 'P' });
                out.push('(');
                rec(tree, tree.left(node), out);
                out.push_str(", ");
                rec(tree, tree.right(node), out);
                out.push(')');
            }
        }
    }
    if tree.num_nodes() > 512 {
        return format!("<{} nodes, too large to render>", tree.num_nodes());
    }
    let mut out = String::new();
    rec(tree, tree.root(), &mut out);
    out
}

/// Run backend `B` over `tree` on `workers` workers, recording every
/// current-thread query answer against already-executed threads.  Per-thread
/// fan-in is capped (deterministically) so huge programs stay affordable.
fn record_query_run<'t, B: SpBackend<'t>>(
    tree: &'t ParseTree,
    workers: usize,
) -> (B, Vec<(ThreadId, ThreadId, bool)>) {
    let n = tree.num_threads();
    let stride = (n / 96).max(1) as u32;
    let executed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let recorded: Mutex<Vec<(ThreadId, ThreadId, bool)>> = Mutex::new(Vec::new());
    let mut backend = B::build(tree, BackendConfig::with_workers(workers));
    backend.run_with_queries(tree, |q, current| {
        let mut answers = Vec::new();
        for earlier in 0..n as u32 {
            let earlier = ThreadId(earlier);
            if earlier == current || !executed[earlier.index()].load(Ordering::Acquire) {
                continue;
            }
            if stride > 1 && (earlier.0.wrapping_mul(2654435761) ^ current.0) % stride != 0 {
                continue;
            }
            answers.push((earlier, current, q.precedes_current(earlier)));
        }
        recorded.lock().extend(answers);
        executed[current.index()].store(true, Ordering::Release);
    });
    (backend, recorded.into_inner())
}

/// Check the recorded current-thread answers of one backend run against the
/// oracle.
fn verify_queries(
    backend: &'static str,
    recorded: &[(ThreadId, ThreadId, bool)],
    oracle: &SpOracle<'_>,
) -> Result<u64, Discrepancy> {
    for &(earlier, current, answer) in recorded {
        let truth = oracle.precedes(earlier, current);
        if answer != truth {
            return Err(Discrepancy {
                backend,
                detail: format!(
                    "precedes_current(u{}) answered {answer} while u{} was current; oracle says {truth}",
                    earlier.0, current.0
                ),
            });
        }
    }
    Ok(recorded.len() as u64)
}

/// Check arbitrary-pair relations of a full backend against the oracle
/// (all pairs for small programs, a deterministic sample for large ones).
fn verify_pairs<B: SpQuery>(
    backend_name: &'static str,
    backend: &B,
    tree: &ParseTree,
    oracle: &SpOracle<'_>,
) -> Result<u64, Discrepancy> {
    let n = tree.num_threads() as u32;
    let mut checked = 0u64;
    let stride = (n / 64).max(1);
    for a in 0..n {
        for b in 0..n {
            if stride > 1 && (a.wrapping_mul(2654435761) ^ b) % stride != 0 {
                continue;
            }
            let (ta, tb) = (ThreadId(a), ThreadId(b));
            let got = backend.relation(ta, tb);
            let want = oracle.relation(ta, tb);
            if got != want {
                return Err(Discrepancy {
                    backend: backend_name,
                    detail: format!("relation(u{a}, u{b}) = {got:?}, oracle says {want:?}"),
                });
            }
            checked += 1;
        }
    }
    Ok(checked)
}

/// Query-conformance pass for one backend kind, serial (`workers == 1`) or
/// parallel.
fn check_backend_queries(
    kind: BackendKind,
    tree: &ParseTree,
    oracle: &SpOracle<'_>,
    workers: usize,
) -> Result<CaseStats, Discrepancy> {
    let name = kind.name();
    let mut stats = CaseStats::default();
    match kind {
        BackendKind::SpOrder => {
            let (backend, rec) = record_query_run::<SpOrder>(tree, workers);
            stats.queries += verify_queries(name, &rec, oracle)?;
            stats.pair_queries += verify_pairs(name, &backend, tree, oracle)?;
        }
        BackendKind::SpBags => {
            let (_backend, rec) = record_query_run::<SpBags>(tree, workers);
            stats.queries += verify_queries(name, &rec, oracle)?;
        }
        BackendKind::EnglishHebrew => {
            let (backend, rec) = record_query_run::<EnglishHebrewLabels>(tree, workers);
            stats.queries += verify_queries(name, &rec, oracle)?;
            stats.pair_queries += verify_pairs(name, &backend, tree, oracle)?;
        }
        BackendKind::OffsetSpan => {
            let (backend, rec) = record_query_run::<OffsetSpanLabels>(tree, workers);
            stats.queries += verify_queries(name, &rec, oracle)?;
            stats.pair_queries += verify_pairs(name, &backend, tree, oracle)?;
        }
        BackendKind::Naive => {
            let (backend, rec) = record_query_run::<NaiveBackend>(tree, workers);
            stats.queries += verify_queries(name, &rec, oracle)?;
            stats.pair_queries += verify_pairs(name, &backend, tree, oracle)?;
        }
        BackendKind::Hybrid => {
            let (_backend, rec) = record_query_run::<HybridBackend>(tree, workers);
            stats.queries += verify_queries(name, &rec, oracle)?;
        }
    }
    Ok(stats)
}

/// Race-report conformance: inject known races, then require every serial
/// backend instantiation of the generic engine to produce the **identical**
/// report, and every backend (including multi-worker parallel runs) to flag
/// exactly the injected locations.  Returns the number of injected races.
/// Public so the tier-1 suite can reuse the exact backend list the sweep
/// covers instead of duplicating it.
pub fn check_races(
    shape: ShapeKind,
    tree: &ParseTree,
    seed: u64,
    workers: usize,
) -> Result<u64, Discrepancy> {
    let base = disjoint_writes(tree, 2);
    let wanted = (tree.num_threads() / 8).min(4);
    let (script, expected) = inject_races(tree, &base, wanted, seed ^ 0x9E37_79B9);
    let serial = BackendConfig::serial();

    let (reference, _) = detect_races::<SpOrder>(tree, &script, serial);
    if reference.racy_locations() != expected {
        return Err(Discrepancy {
            backend: "sp-order",
            detail: format!(
                "racy locations {:?} != injected {:?}",
                reference.racy_locations(),
                expected
            ),
        });
    }

    // Deterministic single-worker runs must agree *race for race*.
    let serial_reports = [
        ("sp-bags", detect_races::<SpBags>(tree, &script, serial).0),
        (
            "english-hebrew",
            detect_races::<EnglishHebrewLabels>(tree, &script, serial).0,
        ),
        (
            "offset-span",
            detect_races::<OffsetSpanLabels>(tree, &script, serial).0,
        ),
        ("naive-locked", detect_races::<NaiveBackend>(tree, &script, serial).0),
    ];
    for (name, report) in &serial_reports {
        if report.races() != reference.races() {
            return Err(Discrepancy {
                backend: name,
                detail: format!(
                    "serial race report diverges from sp-order: {:?} vs {:?}",
                    report.races(),
                    reference.races()
                ),
            });
        }
    }
    if shape.is_cilk_form() {
        let (report, _) = detect_races::<HybridBackend>(tree, &script, serial);
        if report.races() != reference.races() {
            return Err(Discrepancy {
                backend: "sp-hybrid",
                detail: format!(
                    "serial race report diverges from sp-order: {:?} vs {:?}",
                    report.races(),
                    reference.races()
                ),
            });
        }
    }

    // Multi-worker runs are nondeterministically ordered, but on this script
    // (each injected location carries exactly one parallel write-write pair)
    // the racy-location set must still be exactly the injected one.
    if workers > 1 {
        let cfg = BackendConfig::with_workers(workers);
        let (report, _) = detect_races::<NaiveBackend>(tree, &script, cfg);
        if report.racy_locations() != expected {
            return Err(Discrepancy {
                backend: "naive-locked",
                detail: format!(
                    "parallel ({workers} workers) racy locations {:?} != injected {:?}",
                    report.racy_locations(),
                    expected
                ),
            });
        }
        if shape.is_cilk_form() {
            let (report, _) = detect_races::<HybridBackend>(tree, &script, cfg);
            if report.racy_locations() != expected {
                return Err(Discrepancy {
                    backend: "sp-hybrid",
                    detail: format!(
                        "parallel ({workers} workers) racy locations {:?} != injected {:?}",
                        report.racy_locations(),
                        expected
                    ),
                });
            }
        }
    }
    Ok(expected.len() as u64)
}

/// Random-access-script conformance: a fully random read/write mix (no
/// planted ground truth) is judged against the brute-force parallel-conflict
/// oracle.  Serial backends must agree **bit-identically** on the full race
/// list and find exactly the oracle's racy locations — this is the
/// differential test of the reader-replacement rule, whose left-to-right
/// exactness is what makes one recorded reader per location sufficient.
/// Multi-worker runs process accesses in an arbitrary linear extension of
/// the SP order, where one recorded reader is *not* guaranteed to catch
/// every racy location, so they are held to soundness: every reported race
/// must be a genuine parallel conflict on a genuinely racy location.
/// Returns the number of oracle racy locations.
pub fn check_random_scripts(
    shape: ShapeKind,
    tree: &ParseTree,
    seed: u64,
    workers: usize,
) -> Result<u64, Discrepancy> {
    let script = random_mixed_script(tree, 4, 3, seed ^ 0x0DD_B01D);
    let truth = racy_locations_oracle(tree, &script);
    let serial = BackendConfig::serial();

    let (reference, _) = detect_races::<SpOrder>(tree, &script, serial);
    if reference.racy_locations() != truth {
        return Err(Discrepancy {
            backend: "sp-order",
            detail: format!(
                "random script: racy locations {:?} != oracle {:?}",
                reference.racy_locations(),
                truth
            ),
        });
    }

    let serial_reports = [
        ("sp-bags", detect_races::<SpBags>(tree, &script, serial).0),
        (
            "english-hebrew",
            detect_races::<EnglishHebrewLabels>(tree, &script, serial).0,
        ),
        (
            "offset-span",
            detect_races::<OffsetSpanLabels>(tree, &script, serial).0,
        ),
        ("naive-locked", detect_races::<NaiveBackend>(tree, &script, serial).0),
    ];
    for (name, report) in &serial_reports {
        if report.races() != reference.races() {
            return Err(Discrepancy {
                backend: name,
                detail: format!(
                    "random script: serial race report diverges from sp-order: {:?} vs {:?}",
                    report.races(),
                    reference.races()
                ),
            });
        }
    }
    if shape.is_cilk_form() {
        let (report, _) = detect_races::<HybridBackend>(tree, &script, serial);
        if report.races() != reference.races() {
            return Err(Discrepancy {
                backend: "sp-hybrid",
                detail: format!(
                    "random script: serial race report diverges from sp-order: {:?} vs {:?}",
                    report.races(),
                    reference.races()
                ),
            });
        }
    }

    if workers > 1 {
        let cfg = BackendConfig::with_workers(workers);
        let oracle = SpOracle::new(tree);
        let mut parallel_runs = vec![(
            "naive-locked",
            detect_races::<NaiveBackend>(tree, &script, cfg).0,
        )];
        if shape.is_cilk_form() {
            parallel_runs.push(("sp-hybrid", detect_races::<HybridBackend>(tree, &script, cfg).0));
        }
        for (name, report) in &parallel_runs {
            for race in report.races() {
                let genuine = race.earlier != race.later
                    && oracle.parallel(race.earlier, race.later)
                    && truth.contains(&race.loc);
                if !genuine {
                    return Err(Discrepancy {
                        backend: name,
                        detail: format!(
                            "random script ({workers} workers): unsound race {race:?} \
                             (oracle racy locations {truth:?})"
                        ),
                    });
                }
            }
        }
    }
    Ok(truth.len() as u64)
}

/// Run the full differential check for one `(shape, size, seed)` case.
///
/// `workers == 1` checks every backend on a deterministic serial schedule;
/// `workers > 1` additionally runs the parallel-capable backends (SP-hybrid,
/// naive) on that many workers.
///
/// ```
/// use spconform::{check_case, ShapeKind};
///
/// let stats = check_case(ShapeKind::DivideAndConquer, 8, 42, 2)
///     .expect("every backend agrees with the oracle");
/// assert!(stats.queries > 0 && stats.injected_races > 0);
/// ```
pub fn check_case(
    shape: ShapeKind,
    size: u32,
    seed: u64,
    workers: usize,
) -> Result<CaseStats, Discrepancy> {
    let tree = shape.build_tree(size, seed);
    let oracle = SpOracle::new(&tree);
    let mut stats = CaseStats {
        threads: tree.num_threads() as u64,
        ..CaseStats::default()
    };

    for kind in BackendKind::ALL {
        if !kind.supports(shape) {
            continue;
        }
        let s = check_backend_queries(kind, &tree, &oracle, 1)?;
        stats.queries += s.queries;
        stats.pair_queries += s.pair_queries;
    }
    if workers > 1 {
        for kind in [BackendKind::Naive, BackendKind::Hybrid] {
            if !kind.supports(shape) {
                continue;
            }
            let s = check_backend_queries(kind, &tree, &oracle, workers)?;
            stats.queries += s.queries;
            stats.pair_queries += s.pair_queries;
        }
    }
    stats.injected_races += check_races(shape, &tree, seed, workers)?;
    stats.emergent_races += check_random_scripts(shape, &tree, seed, workers)?;
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Sweep + minimization
// ---------------------------------------------------------------------------

/// Configuration of a conformance sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Base seed; every case derives its own seed from it.
    pub base_seed: u64,
    /// Random cases per shape.
    pub cases_per_shape: u32,
    /// Worker count for the periodic multi-worker cases.
    pub parallel_workers: usize,
    /// Every `parallel_every`-th case also runs the parallel backends
    /// multi-worker (0 disables parallel cases).
    pub parallel_every: u32,
    /// Restrict the sweep to a single shape (`None` sweeps all of them).
    /// Per-case seeds are unchanged by the filter: a single-shape run covers
    /// exactly the cases the full sweep would have run for that shape.
    pub only_shape: Option<ShapeKind>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            base_seed: 0xC0FFEE,
            cases_per_shape: 200,
            parallel_workers: 4,
            parallel_every: 8,
            only_shape: None,
        }
    }
}

impl SweepConfig {
    /// Read `SPCONFORM_SEED`, `SPCONFORM_CASES` and `SPCONFORM_SHAPE` from
    /// the environment, falling back to the defaults.  An unknown shape name
    /// panics with the list of valid names — a CI matrix typo must not
    /// silently run an empty sweep.
    pub fn from_env() -> Self {
        let mut config = SweepConfig::default();
        if let Some(seed) = env_u64("SPCONFORM_SEED") {
            config.base_seed = seed;
        }
        if let Some(cases) = env_u64("SPCONFORM_CASES") {
            config.cases_per_shape = cases as u32;
        }
        if let Ok(raw) = std::env::var("SPCONFORM_SHAPE") {
            let raw = raw.trim();
            if !raw.is_empty() {
                config.only_shape = Some(ShapeKind::by_name(raw).unwrap_or_else(|| {
                    panic!(
                        "SPCONFORM_SHAPE: unknown shape {raw:?} (valid: {})",
                        ShapeKind::ALL.map(ShapeKind::name).join(", ")
                    )
                }));
            }
        }
        config
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// Aggregate statistics of a green sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepStats {
    /// Cases run (trees generated).
    pub cases: u64,
    /// Total threads across all generated programs.
    pub threads: u64,
    /// Current-thread queries verified against the oracle.
    pub queries: u64,
    /// Pair relations verified on full backends.
    pub pair_queries: u64,
    /// Injected races all backends were required to find exactly.
    pub injected_races: u64,
    /// Emergent racy locations of random-mix scripts, matched exactly by
    /// the serial backends against the brute-force oracle.
    pub emergent_races: u64,
}

/// SplitMix64, used to derive independent per-case seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The deterministic seed of case number `case` for shape index `shape_idx`
/// under `base_seed` — the derivation [`run_sweep`] uses, exported so other
/// suites draw from the same stream instead of reinventing it.
pub fn case_seed(base_seed: u64, shape_idx: u64, case: u64) -> u64 {
    splitmix64(base_seed.wrapping_add(shape_idx << 40).wrapping_add(case))
}

/// Run `cases_per_shape` differential cases for every shape.  On the first
/// disagreement the failing case is shrunk (via the `proptest` shrinker) to
/// the smallest `size` that still fails and returned as a replayable
/// [`ConformanceFailure`].
///
/// ```
/// use spconform::{run_sweep, SweepConfig};
///
/// let config = SweepConfig { cases_per_shape: 2, ..SweepConfig::default() };
/// let stats = run_sweep(&config).expect("sweep is green");
/// assert_eq!(stats.cases, 20); // 2 cases × 10 shapes
/// ```
pub fn run_sweep(config: &SweepConfig) -> Result<SweepStats, Box<ConformanceFailure>> {
    let mut stats = SweepStats::default();
    for (shape_idx, shape) in ShapeKind::ALL.iter().copied().enumerate() {
        if config.only_shape.is_some_and(|only| only != shape) {
            continue;
        }
        for case in 0..config.cases_per_shape {
            let seed = case_seed(config.base_seed, shape_idx as u64, case as u64);
            let size = 4 + (seed % 25) as u32;
            let workers = if config.parallel_every > 0 && case % config.parallel_every == 0 {
                config.parallel_workers
            } else {
                1
            };
            match check_case(shape, size, seed, workers) {
                Ok(s) => {
                    stats.cases += 1;
                    stats.threads += s.threads;
                    stats.queries += s.queries;
                    stats.pair_queries += s.pair_queries;
                    stats.injected_races += s.injected_races;
                    stats.emergent_races += s.emergent_races;
                }
                Err(discrepancy) => {
                    return Err(Box::new(minimize_failure(
                        shape,
                        size,
                        seed,
                        workers,
                        discrepancy,
                    )));
                }
            }
        }
    }
    Ok(stats)
}

/// Shrink a failing case to the smallest `size` that still fails and package
/// it with the shrunk tree for replay.
///
/// `original` is the discrepancy observed at the unshrunk case.  Multi-worker
/// failures can be timing-dependent and may not reproduce on replay; the
/// shrinker only descends through sizes that failed *when re-checked*, and
/// the reported discrepancy is always the one actually observed at the
/// returned size (falling back to `original` if nothing smaller re-failed —
/// never losing the evidence).
pub fn minimize_failure(
    shape: ShapeKind,
    size: u32,
    seed: u64,
    workers: usize,
    original: Discrepancy,
) -> ConformanceFailure {
    let mut last = original;
    let min_size = proptest::minimize(size, |&s| match check_case(shape, s, seed, workers) {
        Err(d) => {
            last = d;
            true
        }
        Ok(_) => false,
    });
    ConformanceFailure {
        shape,
        size: min_size,
        seed,
        workers,
        discrepancy: last,
        tree: tree_sexpr(&shape.build_tree(min_size, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_names_round_trip_through_by_name() {
        for shape in ShapeKind::ALL {
            assert_eq!(ShapeKind::by_name(shape.name()), Some(shape));
        }
        assert_eq!(ShapeKind::by_name("no-such-shape"), None);
    }

    #[test]
    fn shapes_build_deterministic_valid_trees() {
        for shape in ShapeKind::ALL {
            for (size, seed) in [(0u32, 1u64), (4, 2), (12, 3), (28, 4)] {
                let a = shape.build_tree(size, seed);
                let b = shape.build_tree(size, seed);
                a.check_invariants();
                assert!(a.num_threads() >= 1, "{shape:?} size={size}");
                assert_eq!(a.num_threads(), b.num_threads(), "determinism");
                assert_eq!(tree_sexpr(&a), tree_sexpr(&b), "determinism");
            }
        }
    }

    #[test]
    fn shape_size_scales_the_program() {
        for shape in ShapeKind::ALL {
            let small = shape.build_tree(2, 9).num_threads();
            let large = shape.build_tree(28, 9).num_threads();
            assert!(large > small, "{shape:?}: {small} !< {large}");
        }
    }

    #[test]
    fn check_case_passes_on_every_shape() {
        for shape in ShapeKind::ALL {
            let stats = check_case(shape, 10, 42, 2).unwrap_or_else(|d| {
                panic!("{}: {} — {}", shape.name(), d.backend, d.detail)
            });
            assert!(stats.queries > 0, "{shape:?} issued no queries");
            assert!(stats.pair_queries > 0, "{shape:?} checked no pairs");
        }
    }

    #[test]
    fn random_scripts_find_emergent_races_on_every_shape() {
        // Across a handful of seeds per shape the random mixes must produce
        // at least one emergent racy location (otherwise the check would be
        // vacuous), and every case must pass serial-exactness + parallel
        // soundness.
        for shape in ShapeKind::ALL {
            let mut emergent = 0;
            for seed in 0..6u64 {
                let tree = shape.build_tree(10, seed);
                emergent += check_random_scripts(shape, &tree, seed, 2).unwrap_or_else(|d| {
                    panic!("{}: {} — {}", shape.name(), d.backend, d.detail)
                });
            }
            assert!(emergent > 0, "{shape:?}: random scripts never raced");
        }
    }

    #[test]
    fn minimizer_shrinks_a_synthetic_failure() {
        // Pretend every case of size >= 7 "fails": the minimizer must land
        // exactly on 7 and the replayable failure must rebuild its tree.
        let shape = ShapeKind::ParallelLoop;
        let min = proptest::minimize(20u32, |&s| s >= 7);
        assert_eq!(min, 7);
        let sexpr = tree_sexpr(&shape.build_tree(min, 3));
        assert!(sexpr.contains("u0"), "tree renders: {sexpr}");
    }

    #[test]
    fn sweep_config_reads_env_shapes() {
        let d = SweepConfig::default();
        assert_eq!(d.cases_per_shape, 200);
        assert_eq!(d.base_seed, 0xC0FFEE);
    }

    #[test]
    fn tree_sexpr_matches_structure() {
        use sptree::builder::Ast;
        let tree = Ast::seq(vec![
            Ast::leaf(1),
            Ast::par(vec![Ast::leaf(1), Ast::leaf(1)]),
        ])
        .build();
        assert_eq!(tree_sexpr(&tree), "S(u0, P(u1, u2))");
    }
}

//! Service-vs-standalone differential conformance: random *batches* of Cilk
//! programs run both as concurrent [`spservice::DetectionService`] sessions
//! (multiplexed over pooled epoch-reset arenas) and as standalone
//! [`spprog::run_session`] runs over fresh detectors — and every session's
//! race report must be **bit-identical** to its standalone twin (same races,
//! same order, same thread ids).
//!
//! Each case exercises the full service surface the tentpole claims are
//! isolation-safe:
//!
//! * service pools of **1 and ≥ 2 detector workers** (sequential fast path
//!   and concurrent admission both covered),
//! * **both live SP maintainers** plus the serial elision, via the
//!   deterministic one-worker [`SessionMode`]s (`Serial`, `Hybrid`,
//!   `NaiveLocked` — determinism is what makes bit-identity well-defined),
//! * arena **recycling and growth** (a tiny `locations_hint` forces
//!   `ensure_locations` growth; more sessions than workers forces epoch
//!   resets), and on even seeds a deliberately tiny generation space so the
//!   batch crosses the **wraparound purge** mid-stream.
//!
//! Scripts reuse the live sweep's planting machinery: every program carries
//! parallel write-write pairs on dedicated locations (odd seeds add a random
//! shared/private mix), so the compared reports are non-trivial on every
//! seed.  Failures shrink to a replayable `(shape, size, seed, workers)`
//! like the other sweeps, and [`run_service_sweep`] honors the same
//! `SPCONFORM_SEED` / `SPCONFORM_CASES` environment variables.

use racedet::{Access, AccessScript, LiveDetector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spprog::{run_session, Proc, SessionMode};
use spservice::{DetectionService, ServiceConfig, SessionHandle};
use sptree::cilk::CilkProgram;
use sptree::oracle::SpOracle;
use sptree::tree::ThreadId;
use workloads::live_from_cilk;

use crate::{case_seed, tree_sexpr, Discrepancy, ShapeKind, SweepConfig};

/// Programs per batch: enough that sessions outnumber any worker pool's
/// arenas (forcing recycling) while a single case stays cheap.
const BATCH: usize = 3;

/// The deterministic session modes every batch runs under — the serial
/// elision plus both live SP maintainers pinned to one scheduler worker
/// (the only configurations where "bit-identical" is well-defined).
const MODES: [(&str, SessionMode); 3] = [
    ("service-serial", SessionMode::Serial),
    ("service-sp-hybrid", SessionMode::Hybrid { workers: 1 }),
    ("service-naive-locked", SessionMode::NaiveLocked { workers: 1 }),
];

/// What one service differential case covered.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceCaseStats {
    /// Sessions run through a service (0 if the shape has no Cilk form and
    /// the case was skipped).
    pub sessions: u64,
    /// Planted parallel write-write races across the batch's programs.
    pub planted: u64,
    /// Epoch resets the services performed (arena recycling, not realloc).
    pub epoch_resets: u64,
    /// Wraparound purges the services performed (even seeds use a tiny
    /// generation space precisely to force these).
    pub epoch_purges: u64,
}

/// A service-conformance failure minimized to a replayable case.
#[derive(Clone, Debug)]
pub struct ServiceFailure {
    /// Shape of the failing batch's programs.
    pub shape: ShapeKind,
    /// Minimized size knob.
    pub size: u32,
    /// Seed reproducing the failure.
    pub seed: u64,
    /// Detector-worker pool size of the failing configuration.
    pub service_workers: usize,
    /// The disagreement at the minimized case.
    pub discrepancy: Discrepancy,
    /// The offline tree of the first program of the shrunk batch.
    pub tree: String,
}

impl std::fmt::Display for ServiceFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "service conformance failure in `{}` (shape={}, size={}, seed={:#x}, service_workers={})",
            self.discrepancy.backend,
            self.shape.name(),
            self.size,
            self.seed,
            self.service_workers
        )?;
        writeln!(f, "  {}", self.discrepancy.detail)?;
        writeln!(f, "  first program's tree: {}", self.tree)?;
        write!(
            f,
            "  replay: spconform::service::check_service_case(ShapeKind::{:?}, {}, {:#x}, {})",
            self.shape, self.size, self.seed, self.service_workers
        )
    }
}

fn err(backend: &'static str, detail: String) -> Discrepancy {
    Discrepancy { backend, detail }
}

/// Seed of the `i`-th program in a batch (a fixed odd-multiplier stream so
/// batch members differ but stay replayable from the case seed).
fn program_seed(seed: u64, i: usize) -> u64 {
    seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One program of a batch: the live form, its shared-location count, its
/// standalone reference reports per mode, and its planted-race count.
struct BatchProgram {
    live: Proc,
    locations: u32,
    planted: u64,
    references: Vec<racedet::RaceReport>,
}

/// Build the `i`-th program of the batch, reusing the live sweep's
/// plant-on-fresh-locations script machinery, and compute its standalone
/// reference report under every mode in [`MODES`] with a fresh
/// [`LiveDetector`] each — the "one program owns one detector" baseline the
/// service must be indistinguishable from.
fn build_program(
    shape: ShapeKind,
    size: u32,
    seed: u64,
    i: usize,
) -> Result<Option<BatchProgram>, Discrepancy> {
    let seed = program_seed(seed, i);
    let Some(procedure) = shape.build_procedure(size, seed) else {
        return Ok(None);
    };
    let tree = CilkProgram::new(procedure.clone()).build_tree();
    let oracle = SpOracle::new(&tree);
    let n = tree.num_threads();
    let steps: Vec<ThreadId> = tree.thread_ids().filter(|&t| tree.work_of(t) > 0).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E21_1CE5);
    let mixed = seed % 2 == 1;

    const SHARED: u32 = 6;
    let mut script = AccessScript::new(n, SHARED);
    if mixed {
        for &t in &steps {
            for _ in 0..rng.gen_range(0..3usize) {
                let loc = if rng.gen_bool(0.7) {
                    rng.gen_range(0..SHARED)
                } else {
                    SHARED + t.0
                };
                let access = if rng.gen_bool(0.4) {
                    Access::write(loc)
                } else {
                    Access::read(loc)
                };
                script.push(t, access);
            }
        }
    }
    let mut planted = Vec::new();
    if steps.len() >= 2 {
        let wanted = (steps.len() / 4).clamp(1, 4);
        let mut next_loc = SHARED + n as u32;
        let mut attempts = 0;
        while planted.len() < wanted && attempts < 4_000 {
            attempts += 1;
            let a = steps[rng.gen_range(0..steps.len())];
            let b = steps[rng.gen_range(0..steps.len())];
            if a == b || !oracle.parallel(a, b) {
                continue;
            }
            script.push(a, Access::write(next_loc));
            script.push(b, Access::write(next_loc));
            planted.push(next_loc);
            next_loc += 1;
        }
    }

    let live = live_from_cilk(&procedure, &script);
    let locations = script.num_locations();
    let mut references = Vec::with_capacity(MODES.len());
    for (name, mode) in MODES {
        let detector = LiveDetector::new(locations, 1);
        run_session(&live, mode, &detector);
        let report = detector.into_report();
        // Non-vacuity anchor: the planted pairs sit alone on fresh
        // locations, so every deterministic standalone run must flag them —
        // otherwise the bit-identity comparison below would compare silence
        // to silence.
        let locs = report.racy_locations();
        if let Some(missed) = planted.iter().find(|l| !locs.contains(l)) {
            return Err(err(
                name,
                format!(
                    "standalone reference missed planted race on location {missed}; \
                     reported {locs:?} (program {i} of the batch)"
                ),
            ));
        }
        references.push(report);
    }
    Ok(Some(BatchProgram {
        live,
        locations,
        planted: planted.len() as u64,
        references,
    }))
}

/// Run the service differential check for one `(shape, size, seed)` case:
/// build a `BATCH`-sized batch of planted-race programs, submit every
/// `(program, mode)` pair concurrently to a [`DetectionService`] with
/// `service_workers` detector workers (and, always, to a 1-worker service —
/// the sequential fast path), and require every session outcome to be
/// bit-identical to the standalone reference of the same program and mode.
/// Even seeds run both services with a generation space of 4, so the batch
/// crosses an epoch wraparound purge; shapes without a Cilk form are
/// skipped.
pub fn check_service_case(
    shape: ShapeKind,
    size: u32,
    seed: u64,
    service_workers: usize,
) -> Result<ServiceCaseStats, Discrepancy> {
    let mut batch = Vec::with_capacity(BATCH);
    for i in 0..BATCH {
        match build_program(shape, size, seed, i)? {
            Some(program) => batch.push(program),
            None => return Ok(ServiceCaseStats::default()),
        }
    }

    let mut stats = ServiceCaseStats {
        sessions: 0,
        planted: batch.iter().map(|p| p.planted).sum(),
        epoch_resets: 0,
        epoch_purges: 0,
    };

    // Even seeds: a 4-generation arena space, so ~half the recycles in a
    // 9-session batch happen *after* a wraparound purge.
    let gen_limit = if seed % 2 == 0 {
        4
    } else {
        racedet::EpochShadowArena::MAX_GEN_LIMIT
    };

    for workers in [1, service_workers.max(2)] {
        let service = DetectionService::new(ServiceConfig {
            workers,
            gen_limit,
            // Tiny hint: every batch program outgrows it, so pooled arenas
            // exercise `ensure_locations` growth between leases.
            locations_hint: 4,
            ..ServiceConfig::default()
        });
        // Submit the whole batch up front so multi-worker pools genuinely
        // interleave sessions over the shared arena pool.
        let mut handles: Vec<(usize, usize, &'static str, SessionHandle)> = Vec::new();
        for (pi, program) in batch.iter().enumerate() {
            for (mi, &(name, mode)) in MODES.iter().enumerate() {
                let handle = service.submit_with(&program.live, program.locations, mode);
                handles.push((pi, mi, name, handle));
            }
        }
        for (pi, mi, name, handle) in handles {
            let outcome = handle.wait();
            let expected = &batch[pi].references[mi];
            if outcome.report().races() != expected.races() {
                return Err(err(
                    name,
                    format!(
                        "session report diverges from the standalone run \
                         (program {pi}, {workers}-worker service, gen_limit {gen_limit}): \
                         {:?} vs {:?}",
                        outcome.report().races(),
                        expected.races()
                    ),
                ));
            }
            stats.sessions += 1;
        }
        let service_stats = service.shutdown();
        let submitted = (batch.len() * MODES.len()) as u64;
        if service_stats.sessions != submitted {
            return Err(err(
                "service-lifecycle",
                format!(
                    "service completed {} sessions but {submitted} were submitted",
                    service_stats.sessions
                ),
            ));
        }
        if service_stats.epoch_resets != submitted {
            return Err(err(
                "service-lifecycle",
                format!(
                    "every session must recycle its arena exactly once: \
                     {} resets for {submitted} sessions",
                    service_stats.epoch_resets
                ),
            ));
        }
        stats.epoch_resets += service_stats.epoch_resets;
        stats.epoch_purges += service_stats.epoch_purges;
    }

    if gen_limit == 4 && stats.epoch_purges == 0 {
        return Err(err(
            "service-lifecycle",
            format!(
                "a gen_limit-4 service ran {} sessions without one wraparound purge",
                stats.sessions
            ),
        ));
    }
    Ok(stats)
}

/// Aggregate statistics of a green service sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceSweepStats {
    /// Cases run (batches submitted to 1- and multi-worker services).
    pub cases: u64,
    /// Sessions run across all services.
    pub sessions: u64,
    /// Planted races across all batch programs.
    pub planted: u64,
    /// Epoch resets across all services (recycles, not reallocations).
    pub epoch_resets: u64,
    /// Wraparound purges across all services.
    pub epoch_purges: u64,
}

/// Run `cases_per_shape` service differential cases for every Cilk-form
/// shape, shrinking the first failure to a replayable [`ServiceFailure`].
/// Seeds draw from the same [`case_seed`] stream as the other sweeps, offset
/// so the three sweeps cover different programs; every case runs against a
/// 1-worker service and a multi-worker one (2 by default,
/// `parallel_workers` on every `parallel_every`-th case).  The validated
/// `SP_SERVICE_WORKERS` knob ([`spservice::parse_workers_env`]) overrides
/// the multi-worker pool size for the whole sweep — CI pins one matrix leg
/// to a fixed pool that way; a zero or unparseable override panics naming
/// the knob instead of silently shrinking the sweep.
pub fn run_service_sweep(config: &SweepConfig) -> Result<ServiceSweepStats, Box<ServiceFailure>> {
    let env_override = std::env::var(spservice::WORKERS_ENV)
        .ok()
        .filter(|raw| !raw.trim().is_empty())
        .map(|raw| spservice::parse_workers_env(Some(&raw), 2));
    let mut stats = ServiceSweepStats::default();
    for (shape_idx, shape) in ShapeKind::ALL.iter().copied().enumerate() {
        if shape.build_procedure(1, 1).is_none() {
            continue;
        }
        if config.only_shape.is_some_and(|only| only != shape) {
            continue;
        }
        for case in 0..config.cases_per_shape {
            // Offset the shape index so service cases draw different
            // programs than the main (+0) and live (+17) sweeps.
            let seed = case_seed(config.base_seed, shape_idx as u64 + 43, case as u64);
            let size = 4 + (seed % 25) as u32;
            let service_workers = env_override.unwrap_or(
                if config.parallel_every > 0 && case % config.parallel_every == 0 {
                    config.parallel_workers.max(2)
                } else {
                    2
                },
            );
            match check_service_case(shape, size, seed, service_workers) {
                Ok(s) => {
                    stats.cases += 1;
                    stats.sessions += s.sessions;
                    stats.planted += s.planted;
                    stats.epoch_resets += s.epoch_resets;
                    stats.epoch_purges += s.epoch_purges;
                }
                Err(discrepancy) => {
                    return Err(Box::new(minimize_service_failure(
                        shape,
                        size,
                        seed,
                        service_workers,
                        discrepancy,
                    )));
                }
            }
        }
    }
    Ok(stats)
}

/// Shrink a failing service case to the smallest `size` that still fails
/// (same protocol as the other sweeps' minimizers).
pub fn minimize_service_failure(
    shape: ShapeKind,
    size: u32,
    seed: u64,
    service_workers: usize,
    original: Discrepancy,
) -> ServiceFailure {
    let mut last = original;
    let min_size = proptest::minimize(size, |&s| {
        match check_service_case(shape, s, seed, service_workers) {
            Err(d) => {
                last = d;
                true
            }
            Ok(_) => false,
        }
    });
    ServiceFailure {
        shape,
        size: min_size,
        seed,
        service_workers,
        discrepancy: last,
        tree: tree_sexpr(&shape.build_tree(min_size, program_seed(seed, 0))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_cases_pass_on_every_cilk_shape_both_parities() {
        let mut planted = 0;
        for shape in ShapeKind::ALL {
            if shape.build_procedure(1, 1).is_none() {
                continue;
            }
            // Even seed: tiny gen space (wraparound purges mid-batch);
            // odd seed: full gen space, mixed scripts.
            for seed in [42u64, 43] {
                let stats = check_service_case(shape, 8, seed, 2).unwrap_or_else(|d| {
                    panic!("{} seed {seed}: {} — {}", shape.name(), d.backend, d.detail)
                });
                assert_eq!(stats.sessions, 2 * (BATCH * MODES.len()) as u64);
                planted += stats.planted;
            }
        }
        assert!(planted > 0, "the batches must actually plant races");
    }

    #[test]
    fn even_seeds_actually_cross_wraparound() {
        let stats = check_service_case(ShapeKind::ParallelLoop, 8, 42, 2).expect("case is green");
        assert!(stats.epoch_purges > 0, "gen_limit 4 must purge mid-batch");
    }

    #[test]
    fn random_sp_shapes_are_skipped_not_failed() {
        let stats = check_service_case(ShapeKind::RandomSp, 8, 1, 2).unwrap();
        assert_eq!(stats.sessions, 0);
    }

    #[test]
    fn small_service_sweep_is_green() {
        let config = SweepConfig {
            cases_per_shape: 2,
            ..SweepConfig::default()
        };
        let stats = run_service_sweep(&config).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(stats.cases, 18, "9 Cilk shapes × 2 cases");
        assert!(stats.planted > 0);
        assert_eq!(stats.epoch_resets, stats.sessions, "one recycle per session");
    }
}

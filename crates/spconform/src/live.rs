//! Live-vs-offline differential conformance: every random Cilk program runs
//! **both ways** — live through the `spprog` spawn/sync API (tree unfolding
//! on the fly, online detection) and offline through the materialized parse
//! tree (the classic engines) — and the reports must line up:
//!
//! * the recorded artifacts of a serial live run must reproduce the
//!   canonical tree lowering *exactly* (same structure, same thread
//!   numbering, same access script);
//! * serial live reports must be **bit-identical** to offline serial
//!   detection (same races, same order, same thread ids);
//! * multi-worker live runs — under both live maintainers, the two-tier
//!   SP-hybrid and the naive-locked strawman — must be *location-sound*
//!   (every reported racy location is truly racy per the brute-force
//!   parallel-conflict oracle) and *complete on planted races* (each
//!   planted parallel write-write pair sits alone on its own location, so
//!   any correct detector must flag it under every schedule).  On
//!   planted-only scripts this tightens to exact racy-location equality
//!   with the tree-driven engine.
//!
//! Cases shrink to a replayable `(shape, size, seed)` like the main sweep.
//! [`run_live_sweep`] honors the same `SPCONFORM_SEED` / `SPCONFORM_CASES`
//! environment variables.

use racedet::{detect_races, Access, AccessScript};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spmaint::api::BackendConfig;
use spmaint::SpOrder;
use spprog::{record_program, run_program, try_run_program, LiveMaintainer, RunConfig};
use sptree::cilk::CilkProgram;
use sptree::oracle::SpOracle;
use sptree::tree::ThreadId;
use workloads::{live_from_cilk, racy_locations_oracle};

use crate::{case_seed, tree_sexpr, Discrepancy, ShapeKind, SweepConfig};

/// What one live differential case covered.
#[derive(Clone, Copy, Debug, Default)]
pub struct LiveCaseStats {
    /// Threads of the program (0 if the shape has no Cilk form and the case
    /// was skipped).
    pub threads: u64,
    /// Accesses in the generated script.
    pub accesses: u64,
    /// Planted parallel write-write races (found by every run).
    pub planted: u64,
    /// Emergent racy locations of the random mix (serial-exact, checked for
    /// soundness in multi-worker runs).
    pub emergent: u64,
    /// Multi-worker live runs performed (2 maintainers when `workers > 1`).
    pub parallel_runs: u64,
}

/// A live-conformance failure minimized to a replayable case.
#[derive(Clone, Debug)]
pub struct LiveFailure {
    /// Shape of the failing program.
    pub shape: ShapeKind,
    /// Minimized size knob.
    pub size: u32,
    /// Seed reproducing the failure.
    pub seed: u64,
    /// Worker count of the failing configuration.
    pub workers: usize,
    /// The disagreement at the minimized case.
    pub discrepancy: Discrepancy,
    /// The offline tree of the shrunk case, as an S-expression.
    pub tree: String,
}

impl std::fmt::Display for LiveFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "live conformance failure in `{}` (shape={}, size={}, seed={:#x}, workers={})",
            self.discrepancy.backend,
            self.shape.name(),
            self.size,
            self.seed,
            self.workers
        )?;
        writeln!(f, "  {}", self.discrepancy.detail)?;
        writeln!(f, "  offline tree: {}", self.tree)?;
        write!(
            f,
            "  replay: spconform::live::check_live_case(ShapeKind::{:?}, {}, {:#x}, {})",
            self.shape, self.size, self.seed, self.workers
        )
    }
}

fn err(backend: &'static str, detail: String) -> Discrepancy {
    Discrepancy { backend, detail }
}

/// Run the full live-vs-offline differential check for one
/// `(shape, size, seed)` case.  `workers >= 2` also runs the program live on
/// that many workers under both live maintainers; shapes without a Cilk
/// form ([`ShapeKind::RandomSp`]) are skipped (the live API *is* canonical
/// Cilk form).
///
/// Odd seeds generate a random read/write mix on top of the planted races
/// (multi-worker runs held to soundness + planted completeness); even seeds
/// are planted-only (multi-worker racy-location sets must match the
/// tree-driven engine exactly).
pub fn check_live_case(
    shape: ShapeKind,
    size: u32,
    seed: u64,
    workers: usize,
) -> Result<LiveCaseStats, Discrepancy> {
    let Some(procedure) = shape.build_procedure(size, seed) else {
        return Ok(LiveCaseStats::default());
    };
    let tree = CilkProgram::new(procedure.clone()).build_tree();
    let oracle = SpOracle::new(&tree);
    let n = tree.num_threads();
    let steps: Vec<ThreadId> = tree.thread_ids().filter(|&t| tree.work_of(t) > 0).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11FE_C0DE);
    let mixed = seed % 2 == 1;

    // Script over step threads only: optional random shared/private mix,
    // plus planted parallel write-write pairs on dedicated fresh locations.
    const SHARED: u32 = 6;
    let mut script = AccessScript::new(n, SHARED);
    if mixed {
        for &t in &steps {
            for _ in 0..rng.gen_range(0..3usize) {
                let loc = if rng.gen_bool(0.7) {
                    rng.gen_range(0..SHARED)
                } else {
                    SHARED + t.0
                };
                let access = if rng.gen_bool(0.4) {
                    Access::write(loc)
                } else {
                    Access::read(loc)
                };
                script.push(t, access);
            }
        }
    }
    let mut planted = Vec::new();
    if steps.len() >= 2 {
        let wanted = (steps.len() / 4).clamp(1, 4);
        let mut next_loc = SHARED + n as u32;
        let mut attempts = 0;
        while planted.len() < wanted && attempts < 4_000 {
            attempts += 1;
            let a = steps[rng.gen_range(0..steps.len())];
            let b = steps[rng.gen_range(0..steps.len())];
            if a == b || !oracle.parallel(a, b) {
                continue;
            }
            script.push(a, Access::write(next_loc));
            script.push(b, Access::write(next_loc));
            planted.push(next_loc);
            next_loc += 1;
        }
    }
    planted.sort_unstable();

    // Ground truth and the offline serial reference.
    let truth = racy_locations_oracle(&tree, &script);
    if !planted.iter().all(|loc| truth.contains(loc)) {
        return Err(err(
            "live-harness",
            format!("planted locations {planted:?} not all in oracle truth {truth:?}"),
        ));
    }
    let serial_cfg = BackendConfig::serial();
    let (reference, _) = detect_races::<SpOrder>(&tree, &script, serial_cfg);
    if reference.racy_locations() != truth {
        return Err(err(
            "sp-order",
            format!(
                "offline serial racy locations {:?} != oracle {:?}",
                reference.racy_locations(),
                truth
            ),
        ));
    }

    // The live program, and its recorded artifacts, must reproduce the
    // canonical lowering exactly.
    let live = live_from_cilk(&procedure, &script);
    let locations = script.num_locations();
    let rec = record_program(&live, locations);
    if tree_sexpr(&rec.tree) != tree_sexpr(&tree) {
        return Err(err(
            "spprog-record",
            format!(
                "recorded tree diverges from the Cilk lowering: {} vs {}",
                tree_sexpr(&rec.tree),
                tree_sexpr(&tree)
            ),
        ));
    }
    if rec.script != script {
        return Err(err(
            "spprog-record",
            "recorded access script diverges from the generated script".to_string(),
        ));
    }

    // Serial live run (determinacy-enforced — it seeds the program's serial
    // reference for the multi-worker runs below): bit-identical to offline
    // serial detection, and its structural hash must equal the recorder's.
    let serial_run = run_program(&live, &RunConfig::serial(locations).enforced());
    if serial_run.report.races() != reference.races() {
        return Err(err(
            "spprog-serial",
            format!(
                "serial live report diverges from offline sp-order: {:?} vs {:?}",
                serial_run.report.races(),
                reference.races()
            ),
        ));
    }
    if serial_run.structural_hash != Some(rec.structural_hash) {
        return Err(err(
            "spprog-serial",
            format!(
                "serial structural hash {:?} != recorded bridge hash {:#x}",
                serial_run.structural_hash, rec.structural_hash
            ),
        ));
    }

    // Multi-worker live runs, both maintainers.
    let mut parallel_runs = 0u64;
    if workers > 1 {
        for (name, maintainer) in [
            ("live-sp-hybrid", LiveMaintainer::Hybrid),
            ("live-naive-locked", LiveMaintainer::NaiveLocked),
        ] {
            // Tiny capacity hints: every multi-worker case outgrows the
            // initial chunks of the growable substrates, so the sweep
            // exercises chunk-boundary crossings on every seed (the hints
            // are behavior-neutral — only initial sizes, never limits).
            // Determinacy enforcement is on: every multi-worker run's
            // structural hash must equal the serial reference seeded above.
            let config = RunConfig {
                workers,
                locations,
                maintainer,
                max_threads: 4,
                max_steals: 1,
                enforce_determinacy: true,
                ..RunConfig::default()
            };
            let run = match try_run_program(&live, &config) {
                Ok(run) => run,
                Err(violation) => return Err(err(name, violation.to_string())),
            };
            parallel_runs += 1;
            if run.structural_hash != serial_run.structural_hash {
                return Err(err(
                    name,
                    format!(
                        "structural hash {:?} != serial reference {:?} ({workers} workers)",
                        run.structural_hash, serial_run.structural_hash
                    ),
                ));
            }
            let locs = run.report.racy_locations();
            if let Some(bogus) = locs.iter().find(|l| !truth.contains(l)) {
                return Err(err(
                    name,
                    format!(
                        "unsound: location {bogus} reported racy ({workers} workers) \
                         but oracle truth is {truth:?}"
                    ),
                ));
            }
            if let Some(missed) = planted.iter().find(|l| !locs.contains(l)) {
                return Err(err(
                    name,
                    format!(
                        "planted race on location {missed} missed ({workers} workers); \
                         reported {locs:?}"
                    ),
                ));
            }
            if !mixed && locs != truth {
                return Err(err(
                    name,
                    format!(
                        "planted-only script: racy locations {locs:?} != tree-driven \
                         {truth:?} ({workers} workers)"
                    ),
                ));
            }
        }
    }

    Ok(LiveCaseStats {
        threads: n as u64,
        accesses: script.total_accesses() as u64,
        planted: planted.len() as u64,
        emergent: (truth.len() - planted.len()) as u64,
        parallel_runs,
    })
}

/// Aggregate statistics of a green live sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct LiveSweepStats {
    /// Cases run (programs executed both ways).
    pub cases: u64,
    /// Total threads across all programs.
    pub threads: u64,
    /// Total accesses across all scripts.
    pub accesses: u64,
    /// Planted races, all found by every run.
    pub planted: u64,
    /// Emergent racy locations of the mixed scripts.
    pub emergent: u64,
    /// Multi-worker live runs performed.
    pub parallel_runs: u64,
}

/// Run `cases_per_shape` live differential cases for every Cilk-form shape,
/// shrinking the first failure to a replayable [`LiveFailure`].  Seeds come
/// from the same [`case_seed`] stream as the main sweep (offset so the two
/// sweeps cover different programs); every case runs multi-worker — 2
/// workers by default, `parallel_workers` on every `parallel_every`-th case.
pub fn run_live_sweep(config: &SweepConfig) -> Result<LiveSweepStats, Box<LiveFailure>> {
    let mut stats = LiveSweepStats::default();
    for (shape_idx, shape) in ShapeKind::ALL.iter().copied().enumerate() {
        if shape.build_procedure(1, 1).is_none() {
            continue;
        }
        if config.only_shape.is_some_and(|only| only != shape) {
            continue;
        }
        for case in 0..config.cases_per_shape {
            // Offset the shape index so live cases draw different programs
            // than the main sweep under the same base seed.
            let seed = case_seed(config.base_seed, shape_idx as u64 + 17, case as u64);
            let size = 4 + (seed % 25) as u32;
            let workers = if config.parallel_every > 0 && case % config.parallel_every == 0 {
                config.parallel_workers.max(2)
            } else {
                2
            };
            match check_live_case(shape, size, seed, workers) {
                Ok(s) => {
                    stats.cases += 1;
                    stats.threads += s.threads;
                    stats.accesses += s.accesses;
                    stats.planted += s.planted;
                    stats.emergent += s.emergent;
                    stats.parallel_runs += s.parallel_runs;
                }
                Err(discrepancy) => {
                    return Err(Box::new(minimize_live_failure(
                        shape,
                        size,
                        seed,
                        workers,
                        discrepancy,
                    )));
                }
            }
        }
    }
    Ok(stats)
}

/// Shrink a failing live case to the smallest `size` that still fails (the
/// same protocol as the main sweep's minimizer: only sizes that re-fail are
/// descended into, and the reported discrepancy is the one observed at the
/// returned size).
pub fn minimize_live_failure(
    shape: ShapeKind,
    size: u32,
    seed: u64,
    workers: usize,
    original: Discrepancy,
) -> LiveFailure {
    let mut last = original;
    let min_size = proptest::minimize(size, |&s| match check_live_case(shape, s, seed, workers) {
        Err(d) => {
            last = d;
            true
        }
        Ok(_) => false,
    });
    LiveFailure {
        shape,
        size: min_size,
        seed,
        workers,
        discrepancy: last,
        tree: tree_sexpr(&shape.build_tree(min_size, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_cases_pass_on_every_cilk_shape_both_script_modes() {
        for shape in ShapeKind::ALL {
            if shape.build_procedure(1, 1).is_none() {
                continue;
            }
            // Even seed: planted-only (exact racy-location equality);
            // odd seed: mixed (soundness + planted completeness).
            for seed in [42u64, 43] {
                let stats = check_live_case(shape, 8, seed, 2).unwrap_or_else(|d| {
                    panic!("{} seed {seed}: {} — {}", shape.name(), d.backend, d.detail)
                });
                assert!(stats.threads > 0);
                assert_eq!(stats.parallel_runs, 2, "both live maintainers ran");
            }
        }
    }

    #[test]
    fn random_sp_shapes_are_skipped_not_failed() {
        let stats = check_live_case(ShapeKind::RandomSp, 8, 1, 2).unwrap();
        assert_eq!(stats.threads, 0);
    }

    #[test]
    fn planted_races_are_not_vacuous_across_seeds() {
        let mut planted = 0;
        for seed in 0..8u64 {
            planted += check_live_case(ShapeKind::DivideAndConquer, 10, seed, 2)
                .expect("case is green")
                .planted;
        }
        assert!(planted > 0, "the plant machinery must actually plant races");
    }

    #[test]
    fn shrunk_data_dependent_cases_replay_to_the_same_structural_hash() {
        // The minimizer never mutates a realized tree: it only shrinks
        // `size` and regenerates the whole case from `(shape, size, seed)`.
        // For the data-dependent shapes — whose spawn structure is a
        // function of the seeded input *values* — that discipline is what
        // keeps a shrunk failure replayable: an independently rebuilt
        // program must unfold to the bit-identical structure, pinned here
        // through the schedule-independent structural hash.
        for shape in [ShapeKind::Quicksort, ShapeKind::BranchBound, ShapeKind::DataReduction] {
            // Sizes a shrink may land on, including the floor.
            for size in [0u32, 3, 9] {
                let seed = 0x0DA7_ADE9u64;
                let replay_hash = || {
                    let procedure = shape.build_procedure(size, seed).expect("Cilk-form shape");
                    let tree = CilkProgram::new(procedure.clone()).build_tree();
                    let script = AccessScript::new(tree.num_threads(), 1);
                    let live = live_from_cilk(&procedure, &script);
                    record_program(&live, 1).structural_hash
                };
                assert_eq!(replay_hash(), replay_hash(), "{} size {size}", shape.name());
            }
        }
    }

    #[test]
    fn small_live_sweep_is_green() {
        let config = SweepConfig {
            cases_per_shape: 3,
            ..SweepConfig::default()
        };
        let stats = run_live_sweep(&config).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(stats.cases, 27, "9 Cilk shapes × 3 cases");
        assert!(stats.planted > 0);
        assert!(stats.parallel_runs >= stats.cases, "every case ran multi-worker");
    }
}

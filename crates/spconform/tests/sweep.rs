//! The full differential conformance sweep.
//!
//! Runs `SPCONFORM_CASES` (default 200) random programs per shape, derived
//! from `SPCONFORM_SEED` (default 0xC0FFEE), through all six SP backends and
//! cross-checks every queried relation against the LCA oracle plus the race
//! reports of every generic-engine instantiation.  CI runs this under
//! several seeds; locally, e.g.:
//!
//! ```text
//! SPCONFORM_SEED=0x1234 SPCONFORM_CASES=500 cargo test -p spconform --release
//! ```

use spconform::{run_live_sweep, run_service_sweep, run_sweep, ShapeKind, SweepConfig};

#[test]
fn differential_sweep_all_shapes() {
    let config = SweepConfig::from_env();
    let shapes = if config.only_shape.is_some() {
        1
    } else {
        ShapeKind::ALL.len() as u64
    };
    match run_sweep(&config) {
        Ok(stats) => {
            assert_eq!(
                stats.cases,
                shapes * config.cases_per_shape as u64,
                "every generated case must be checked"
            );
            assert!(stats.queries > 0 && stats.pair_queries > 0);
            assert!(stats.emergent_races > 0, "random-script check must not be vacuous");
            println!(
                "conformance sweep green: {} cases, {} threads, {} current-queries, \
                 {} pair-queries, {} injected + {} emergent races (seed {:#x})",
                stats.cases,
                stats.threads,
                stats.queries,
                stats.pair_queries,
                stats.injected_races,
                stats.emergent_races,
                config.base_seed
            );
        }
        Err(failure) => panic!("{failure}"),
    }
}

/// The service differential sweep: random batches of planted-race programs
/// submitted as concurrent `spservice` sessions (1-worker and multi-worker
/// pools, all three deterministic session modes, pooled epoch-reset arenas
/// with wraparound forced on even seeds) — every session report must be
/// bit-identical to a standalone run of the same program and mode.  Honors
/// the same environment variables as the main sweep, so CI covers it under
/// every seed of the matrix.
#[test]
fn service_differential_sweep_all_cilk_shapes() {
    let config = SweepConfig::from_env();
    let cilk_shapes = match config.only_shape {
        Some(shape) => u64::from(shape.is_cilk_form()),
        None => ShapeKind::ALL.len() as u64 - 1,
    };
    match run_service_sweep(&config) {
        Ok(stats) => {
            assert_eq!(
                stats.cases,
                cilk_shapes * config.cases_per_shape as u64,
                "every Cilk-form case must run through the service"
            );
            assert!(
                cilk_shapes == 0 || (stats.planted > 0 && stats.epoch_purges > 0),
                "planted-race and wraparound checks must not be vacuous"
            );
            assert_eq!(
                stats.epoch_resets, stats.sessions,
                "every session must recycle its arena exactly once"
            );
            println!(
                "service conformance sweep green: {} cases, {} sessions, {} planted races, \
                 {} epoch resets, {} wraparound purges (seed {:#x})",
                stats.cases,
                stats.sessions,
                stats.planted,
                stats.epoch_resets,
                stats.epoch_purges,
                config.base_seed
            );
        }
        Err(failure) => panic!("{failure}"),
    }
}

/// The live differential sweep: every Cilk-form case executed both ways —
/// live via the `spprog` spawn/sync API (serial and multi-worker, both live
/// maintainers) and offline via the recorded parse tree — with serial
/// reports required to be bit-identical and multi-worker reports held to
/// location soundness + planted completeness (exact equality on
/// planted-only scripts).  Honors the same environment variables as the
/// main sweep, so CI covers it under every seed of the matrix.
#[test]
fn live_differential_sweep_all_cilk_shapes() {
    let config = SweepConfig::from_env();
    // All shapes but RandomSp have a Cilk form and run live.
    let cilk_shapes = match config.only_shape {
        Some(shape) => u64::from(shape.is_cilk_form()),
        None => ShapeKind::ALL.len() as u64 - 1,
    };
    match run_live_sweep(&config) {
        Ok(stats) => {
            assert_eq!(
                stats.cases,
                cilk_shapes * config.cases_per_shape as u64,
                "every Cilk-form case must run live"
            );
            assert!(
                cilk_shapes == 0 || stats.planted > 0,
                "planted-race check must not be vacuous"
            );
            assert!(
                stats.parallel_runs >= 2 * stats.cases,
                "both live maintainers must run multi-worker on every case"
            );
            println!(
                "live conformance sweep green: {} cases, {} threads, {} accesses, \
                 {} planted + {} emergent races, {} multi-worker live runs (seed {:#x})",
                stats.cases,
                stats.threads,
                stats.accesses,
                stats.planted,
                stats.emergent,
                stats.parallel_runs,
                config.base_seed
            );
        }
        Err(failure) => panic!("{failure}"),
    }
}
